package game

import (
	"math"
	"sync"
	"sync/atomic"

	"auditgame/internal/fault"
)

// A brute-force sweep evaluates the same ordering batch at every integer
// threshold vector of a grid — and re-walks the whole trie per grid
// point, even though a trie node at depth d depends only on the
// thresholds of the d+1 types on its root path. This file sweeps the
// grid INSIDE the trie walk: each node nests a loop over its own type's
// threshold values around the usual row fold, so a depth-0 node's row
// sums are computed once per threshold value instead of once per grid
// point. It is the PrefixPricer's budget-checkpoint sharing (prefix.go)
// applied across the threshold grid instead of along one ordering.
//
// Bitwise contract: Pals(ks) equals PalBatchNoCache(os, b(ks)) bit for
// bit. Per (node, threshold-prefix) the row operations are the ones the
// fixed-threshold walk performs at that node, in the same row order
// over the same chunks, and chunk partials accumulate into the table in
// chunk-index order — the same merge order palCompute uses. Subtrees
// whose live set empties are still traversed (their grid points need
// the ancestors' contributions) but skip all row work; the skipped
// positions contribute exact zeros, as in the fixed-threshold walk.

// PalGrid is the detection-probability table of one ordering batch
// swept over a full integer threshold grid by PalGridSweep.
type PalGrid struct {
	nT     int
	nOs    int
	stride []int
	data   []float64 // [gridIdx][ordering][type], gridIdx = Σ ks[t]·stride[t]
}

// Pals returns the pal vectors — one per ordering, indexed as the swept
// batch — at the grid point with threshold multiples ks (b_t = ks[t]·C_t).
// The returned slices alias the table; callers must not write them.
func (pg *PalGrid) Pals(ks []int) [][]float64 {
	idx := 0
	for t, k := range ks {
		idx += k * pg.stride[t]
	}
	base := idx * pg.nOs * pg.nT
	out := make([][]float64, pg.nOs)
	for o := range out {
		lo := base + o*pg.nT
		out[o] = pg.data[lo : lo+pg.nT : lo+pg.nT]
	}
	return out
}

// maxPalGridCells caps the sweep table (float64 count, ≈ 64 MB). Grids
// past it — |T| = 6 brute forces can reach gigabytes — fall back to
// per-point evaluation.
const maxPalGridCells = 8 << 20

// PalGridSweep evaluates every ordering of os at every threshold vector
// b_t = k_t·C_t, k_t ∈ {0, …, steps[t]}, and returns the table. It
// returns nil — callers fall back to per-point evaluation — when the
// table would exceed maxPalGridCells or the batch is not made of
// distinct full permutations (the leaf-emission scheme needs a unique
// leaf per ordering).
func (in *Instance) PalGridSweep(os []Ordering, steps []int) *PalGrid {
	nT := in.nT
	nRows := len(in.ws)
	cells := len(os) * nT
	if cells == 0 || nRows == 0 {
		return nil
	}
	stride := make([]int, nT)
	nGrid := 1
	for t := nT - 1; t >= 0; t-- {
		stride[t] = nGrid
		if steps[t] < 0 || nGrid > maxPalGridCells/(steps[t]+1)/cells {
			return nil
		}
		nGrid *= steps[t] + 1
	}
	for _, o := range os {
		if len(o) != nT {
			return nil
		}
	}
	tr := in.buildPalTrie(os, make(Thresholds, nT))
	nNodes := len(tr.typ)
	leafOrd := make([]int32, nNodes)
	for i := range leafOrd {
		leafOrd[i] = -1
	}
	for k, p := range tr.path {
		leaf := p[len(p)-1]
		if tr.skip[leaf] != leaf+1 || leafOrd[leaf] >= 0 {
			return nil // duplicate ordering: no unique leaf to emit at
		}
		leafOrd[leaf] = int32(k)
	}

	// Per-(node, k) threshold data resolved up front, so walk workers
	// never touch the spentColumn mutex: the swept consumption columns
	// min(z_t·C_t, b_t) and caps ⌊b_t/C_t⌋ at b_t = k·C_t — the exact
	// expressions the fixed-threshold trie build evaluates.
	spColK := make([][][]float64, nNodes)
	capK := make([][]float64, nNodes)
	for i := 0; i < nNodes; i++ {
		t := int(tr.typ[i])
		ct := tr.cost[i]
		spColK[i] = make([][]float64, steps[t]+1)
		capK[i] = make([]float64, steps[t]+1)
		for k := 0; k <= steps[t]; k++ {
			bt := float64(k) * ct
			spColK[i][k] = in.spentColumn(t, bt)
			capK[i][k] = math.Floor(bt / ct)
		}
	}

	pg := &PalGrid{nT: nT, nOs: len(os), stride: stride, data: make([]float64, nGrid*len(os)*nT)}
	nRoots := len(tr.rootAt) - 1
	nChunks := (nRows + palChunkRows - 1) / palChunkRows

	// Work units are root subtrees: two roots emit into disjoint table
	// regions (their leaf orderings differ in the first type), while one
	// root's chunks must accumulate in chunk-index order, so each unit
	// walks its chunks serially. Panic containment as in palCompute.
	unit := func(r int, sc *trieScratch, typStack []int32, contrib []float64) {
		for c := 0; c < nChunks; c++ {
			if err := fault.Inject(fault.PalWorker); err != nil {
				panic(err)
			}
			lo := c * palChunkRows
			hi := lo + palChunkRows
			if hi > nRows {
				hi = nRows
			}
			in.palGridChunk(tr, lo, hi, r, spColK, capK, leafOrd, pg, sc, typStack, contrib)
		}
	}
	if workers := in.workerCount(nRoots, nRows*len(os)); workers > 1 {
		var panicked atomic.Pointer[palPanic]
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicked.CompareAndSwap(nil, &palPanic{val: r})
					}
				}()
				sc := in.getTrieScratch(tr.maxDepth)
				typStack := make([]int32, tr.maxDepth)
				contrib := make([]float64, tr.maxDepth)
				for {
					r := int(next.Add(1)) - 1
					if r >= nRoots {
						in.scratch.Put(sc)
						return
					}
					unit(r, sc, typStack, contrib)
				}
			}()
		}
		wg.Wait()
		if p := panicked.Load(); p != nil {
			panic(p.val)
		}
	} else {
		sc := in.getTrieScratch(tr.maxDepth)
		typStack := make([]int32, tr.maxDepth)
		contrib := make([]float64, tr.maxDepth)
		for r := 0; r < nRoots; r++ {
			unit(r, sc, typStack, contrib)
		}
		in.scratch.Put(sc)
	}
	in.palEvals.Add(int64(nGrid * len(os)))
	return pg
}

// palGridChunk walks root subtree r over rows [lo, hi), sweeping each
// node's threshold values and accumulating each ordering's per-position
// sums into the table at that ordering's leaf. Row-level mechanics —
// fold, contribution guard, live lists, spent checkpoints — mirror
// palTrieChunk exactly; see the contract at the top of the file.
func (in *Instance) palGridChunk(tr *palTrie, lo, hi, r int, spColK [][][]float64, capK [][]float64, leafOrd []int32, pg *PalGrid, sc *trieScratch, typStack []int32, contrib []float64) {
	n := hi - lo
	nRows := len(in.ws)
	budget := in.Budget
	ws := in.ws[lo:hi]
	skip := tr.skip
	nOs, nT := pg.nOs, pg.nT
	stride := pg.stride
	data := pg.data

	var walkNode func(i int32, d int, idx int)
	walkRange := func(s, e int32, d int, idx int) {
		for i := s; i < e; i = skip[i] {
			walkNode(i, d, idx)
		}
	}
	walkNode = func(i int32, d int, idx int) {
		var pSpent []float64
		var pLive []int32
		if d == 0 {
			pSpent, pLive = sc.zero[:n], sc.all[:n]
		} else {
			pSpent, pLive = sc.spent[(d-1)*palChunkRows:(d-1)*palChunkRows+n], sc.live[d-1]
		}
		t := int(tr.typ[i])
		ct := tr.cost[i]
		zeff := in.zeffT[t*nRows+lo : t*nRows+hi]
		recip := in.zrecipT[t*nRows+lo : t*nRows+hi]
		typStack[d] = tr.typ[i]
		leaf := skip[i] == i+1
		cm := tr.childMin[i]
		for k := 0; k < len(capK[i]); k++ {
			capk := capK[i][k]
			var a float64
			if leaf {
				if ct == 1 {
					for _, rr := range pLive {
						nt := math.Floor(budget - pSpent[rr])
						if capk < nt {
							nt = capk
						}
						if z := zeff[rr]; z < nt {
							nt = z
						}
						if nt > 0 {
							a += ws[rr] * nt * recip[rr]
						}
					}
				} else {
					for _, rr := range pLive {
						nt := math.Floor((budget - pSpent[rr]) / ct)
						if capk < nt {
							nt = capk
						}
						if z := zeff[rr]; z < nt {
							nt = z
						}
						if nt > 0 {
							a += ws[rr] * nt * recip[rr]
						}
					}
				}
				contrib[d] = a
				base := ((idx+k*stride[t])*nOs + int(leafOrd[i])) * nT
				for dd := 0; dd <= d; dd++ {
					data[base+int(typStack[dd])] += contrib[dd]
				}
			} else {
				sp := spColK[i][k][lo:hi]
				cur := sc.spent[d*palChunkRows : d*palChunkRows+n]
				myLive := sc.live[d][:0]
				if ct == 1 {
					for _, rr := range pLive {
						spent := pSpent[rr]
						nt := math.Floor(budget - spent)
						if capk < nt {
							nt = capk
						}
						if z := zeff[rr]; z < nt {
							nt = z
						}
						if nt > 0 {
							a += ws[rr] * nt * recip[rr]
						}
						ns := spent + sp[rr]
						cur[rr] = ns
						if budget-ns >= cm {
							myLive = append(myLive, rr)
						}
					}
				} else {
					for _, rr := range pLive {
						spent := pSpent[rr]
						nt := math.Floor((budget - spent) / ct)
						if capk < nt {
							nt = capk
						}
						if z := zeff[rr]; z < nt {
							nt = z
						}
						if nt > 0 {
							a += ws[rr] * nt * recip[rr]
						}
						ns := spent + sp[rr]
						cur[rr] = ns
						if budget-ns >= cm {
							myLive = append(myLive, rr)
						}
					}
				}
				sc.live[d] = myLive
				contrib[d] = a
				walkRange(i+1, skip[i], d+1, idx+k*stride[t])
			}
		}
	}
	walkRange(tr.rootAt[r], tr.rootAt[r+1], 0, 0)
}
