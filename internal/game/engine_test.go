package game

import (
	"math/rand"
	"sync"
	"testing"

	"auditgame/internal/sample"
)

// synAEngineInstance builds a Syn A instance with the given worker
// setting; the engine guarantees bitwise-identical results at every
// setting, which these tests pin down.
func synAEngineInstance(t *testing.T, budget float64, workers int) *Instance {
	t.Helper()
	g := SynA()
	src, err := sample.NewEnumerator(g.Dists(), sample.DefaultEnumerationLimit)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(g, budget, src)
	if err != nil {
		t.Fatal(err)
	}
	in.Workers = workers
	return in
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// engineCases enumerates a mix of full and partial orderings with
// assorted thresholds — enough shapes to exercise caps, partial budgets,
// and the early-exit path.
func engineCases() ([]Ordering, []Thresholds) {
	os := AllOrderings(4)
	os = append(os, Ordering{2}, Ordering{3, 1}, Ordering{0, 2, 1})
	bs := []Thresholds{
		{3, 3, 3, 3},
		{2, 4, 1, 5},
		{0, 0, 7, 7},
		{11, 9, 7, 7},
		{1, 0, 0, 1},
	}
	return os, bs
}

// TestPalBatchMatchesPal: the batched kernel must agree with one-at-a-time
// evaluation to the bit, computed fresh on separate instances.
func TestPalBatchMatchesPal(t *testing.T) {
	os, bs := engineCases()
	one := synAEngineInstance(t, 10, 1)
	batched := synAEngineInstance(t, 10, 1)
	for _, b := range bs {
		got := batched.PalBatch(os, b)
		for k, o := range os {
			want := one.Pal(o, b)
			if !bitsEqual(got[k], want) {
				t.Fatalf("b=%v o=%v: batch %v != single %v", b, o, got[k], want)
			}
		}
	}
}

// TestPalParallelBitwiseIdentical: realization sharding across workers
// must not change a single bit versus the serial path, for Pal, PalBatch
// and Loss.
func TestPalParallelBitwiseIdentical(t *testing.T) {
	os, bs := engineCases()
	serial := synAEngineInstance(t, 10, 1)
	parallel := synAEngineInstance(t, 10, 8)
	for _, b := range bs {
		sp := serial.PalBatch(os, b)
		pp := parallel.PalBatch(os, b)
		for k := range os {
			if !bitsEqual(sp[k], pp[k]) {
				t.Fatalf("b=%v o=%v: serial %v != parallel %v", b, os[k], sp[k], pp[k])
			}
		}
	}
	full := AllOrderings(4)
	po := make([]float64, len(full))
	for i := range po {
		po[i] = 1 / float64(len(full))
	}
	for _, b := range bs {
		ls := serial.Loss(full, po, b)
		lp := parallel.Loss(full, po, b)
		if ls != lp {
			t.Fatalf("b=%v: serial loss %v != parallel loss %v", b, ls, lp)
		}
	}
}

// TestPalConcurrentHammer drives one shared instance from many goroutines
// mixing Pal, PalBatch and Loss, and checks every result bitwise against
// a serial reference instance. Run under -race this also proves the
// sharded cache and interners are data-race free.
func TestPalConcurrentHammer(t *testing.T) {
	os, bs := engineCases()
	ref := synAEngineInstance(t, 10, 1)
	shared := synAEngineInstance(t, 10, 0)

	full := AllOrderings(4)
	po := make([]float64, len(full))
	for i := range po {
		po[i] = 1 / float64(len(full))
	}
	wantPal := make(map[int][][]float64)
	wantLoss := make([]float64, len(bs))
	for bi, b := range bs {
		wantPal[bi] = ref.PalBatch(os, b)
		wantLoss[bi] = ref.Loss(full, po, b)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 40; iter++ {
				bi := r.Intn(len(bs))
				switch iter % 3 {
				case 0:
					k := r.Intn(len(os))
					if got := shared.Pal(os[k], bs[bi]); !bitsEqual(got, wantPal[bi][k]) {
						t.Errorf("goroutine %d: Pal(%v,%v) = %v, want %v", g, os[k], bs[bi], got, wantPal[bi][k])
						return
					}
				case 1:
					got := shared.PalBatch(os, bs[bi])
					for k := range os {
						if !bitsEqual(got[k], wantPal[bi][k]) {
							t.Errorf("goroutine %d: PalBatch mismatch at o=%v b=%v", g, os[k], bs[bi])
							return
						}
					}
				case 2:
					if got := shared.Loss(full, po, bs[bi]); got != wantLoss[bi] {
						t.Errorf("goroutine %d: Loss(b=%v) = %v, want %v", g, bs[bi], got, wantLoss[bi])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPalCacheHitNoAlloc pins the zero-allocation contract of the cache
// hit path: interned keys are hashed on the stack, and the cached slice
// is returned as-is.
func TestPalCacheHitNoAlloc(t *testing.T) {
	in := synAEngineInstance(t, 10, 1)
	o := Ordering{0, 1, 2, 3}
	b := Thresholds{3, 3, 3, 3}
	in.Pal(o, b) // populate
	allocs := testing.AllocsPerRun(100, func() {
		in.Pal(o, b)
	})
	if allocs != 0 {
		t.Fatalf("cache-hit Pal allocates %v objects per call, want 0", allocs)
	}
}

// weightedSource is a hand-built Source with explicit (possibly
// duplicated) realizations for the dedup tests.
type weightedSource struct {
	rows []sample.Realization
	ws   []float64
}

func (s *weightedSource) Each(fn func(z sample.Realization, w float64)) {
	for i, z := range s.rows {
		fn(z, s.ws[i])
	}
}

func (s *weightedSource) Size() int { return len(s.rows) }

// TestRealizationDedup: duplicate rows must merge their weights at
// NewInstance time, and Pal over the merged matrix must match the
// expectation computed from the duplicated source by hand.
func TestRealizationDedup(t *testing.T) {
	g := tinyGame()
	// Powers of two keep the merged weights bitwise-exact, so the pal
	// comparison below can demand bit equality rather than a tolerance.
	dup := &weightedSource{
		rows: []sample.Realization{{2, 2}, {1, 3}, {2, 2}, {2, 2}},
		ws:   []float64{0.25, 0.5, 0.125, 0.125},
	}
	in, err := NewInstance(g, 3, dup)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumRealizations() != 2 {
		t.Fatalf("NumRealizations = %d, want 2 after dedup", in.NumRealizations())
	}
	merged := &weightedSource{
		rows: []sample.Realization{{2, 2}, {1, 3}},
		ws:   []float64{0.5, 0.5},
	}
	in2, err := NewInstance(g, 3, merged)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range [][]int{{0, 1}, {1, 0}, {1}} {
		got := in.Pal(Ordering(o), Thresholds{2, 2})
		want := in2.Pal(Ordering(o), Thresholds{2, 2})
		if !bitsEqual(got, want) {
			t.Fatalf("o=%v: deduped pal %v != merged-source pal %v", o, got, want)
		}
	}
}

// TestPalEvalCounting: batch evaluation must count one eval per distinct
// uncached ordering, and cache hits none — the Table VII accounting
// contract.
func TestPalEvalCounting(t *testing.T) {
	in := synAEngineInstance(t, 10, 1)
	os := AllOrderings(4)
	b := Thresholds{3, 3, 3, 3}
	in.PalBatch(os, b)
	if got := in.PalEvals(); got != len(os) {
		t.Fatalf("PalEvals = %d after batch of %d, want %d", got, len(os), len(os))
	}
	in.PalBatch(os, b)
	in.Pal(os[0], b)
	if got := in.PalEvals(); got != len(os) {
		t.Fatalf("PalEvals = %d after cached re-evaluations, want %d", got, len(os))
	}
}
