package game

import (
	"testing"
	"testing/quick"
)

func TestAllOrderingsCount(t *testing.T) {
	want := []int{0, 1, 2, 6, 24, 120}
	for n := 0; n <= 5; n++ {
		got := len(AllOrderings(n))
		if got != want[n] {
			t.Fatalf("AllOrderings(%d) has %d entries, want %d", n, got, want[n])
		}
	}
}

func TestAllOrderingsAreDistinctPermutations(t *testing.T) {
	seen := map[string]bool{}
	for _, o := range AllOrderings(4) {
		if !o.ValidPermutation(4) {
			t.Fatalf("%v is not a permutation", o)
		}
		k := o.Key()
		if seen[k] {
			t.Fatalf("duplicate ordering %v", o)
		}
		seen[k] = true
	}
}

func TestAllOrderingsRefusesLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n > 8")
		}
	}()
	AllOrderings(9)
}

func TestOrderingStringAndParseRoundTrip(t *testing.T) {
	o := Ordering{1, 0, 3, 2}
	s := o.String()
	if s != "[2,1,4,3]" {
		t.Fatalf("String = %q", s)
	}
	back, err := ParseOrdering(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != o.Key() {
		t.Fatalf("roundtrip %v → %v", o, back)
	}
}

func TestParseOrderingErrors(t *testing.T) {
	if _, err := ParseOrdering(""); err == nil {
		t.Fatal("expected error for empty string")
	}
	if _, err := ParseOrdering("[1,x]"); err == nil {
		t.Fatal("expected error for non-numeric")
	}
}

func TestValidPermutation(t *testing.T) {
	cases := []struct {
		o    Ordering
		n    int
		want bool
	}{
		{Ordering{0, 1, 2}, 3, true},
		{Ordering{2, 1, 0}, 3, true},
		{Ordering{0, 1}, 3, false},
		{Ordering{0, 0, 1}, 3, false},
		{Ordering{0, 1, 3}, 3, false},
		{Ordering{-1, 1, 2}, 3, false},
	}
	for _, tc := range cases {
		if got := tc.o.ValidPermutation(tc.n); got != tc.want {
			t.Errorf("ValidPermutation(%v, %d) = %v, want %v", tc.o, tc.n, got, tc.want)
		}
	}
}

func TestOrderingCloneIndependent(t *testing.T) {
	o := Ordering{0, 1, 2}
	c := o.Clone()
	c[0] = 9
	if o[0] != 0 {
		t.Fatal("Clone aliases original")
	}
}

// Property: String/Parse round-trips for arbitrary small permutations.
func TestOrderingRoundTripProperty(t *testing.T) {
	perms := AllOrderings(5)
	f := func(idx uint16) bool {
		o := perms[int(idx)%len(perms)]
		back, err := ParseOrdering(o.String())
		return err == nil && back.Key() == o.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
