package game

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"auditgame/internal/fault"
)

// palPanic carries the first panic recovered in a pal worker goroutine
// back to the dispatching goroutine for re-raising.
type palPanic struct{ val any }

// This file is the detection-probability evaluation engine: interned
// (ordering, threshold) IDs, a sharded result cache, and a chunked kernel
// that evaluates batches of orderings in one pass over the realization
// matrix, optionally sharding realizations across workers.
//
// Determinism contract: results are bitwise-identical at every worker
// count. The realization matrix is cut into fixed-size chunks whose
// boundaries depend only on the data; each chunk accumulates into its own
// scratch, and partial sums are merged in chunk-index order. The serial
// path runs the same chunked reduction, so "parallel equals serial" holds
// to the last bit rather than up to floating-point reassociation.

// fnv1a64 constants for the interners' content hashes.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// orderingInterner assigns stable compact IDs to orderings by content.
// The hit path hashes the elements on the stack and takes one shard-free
// read lock — no allocation, no string building.
type orderingInterner struct {
	mu     sync.RWMutex
	byHash map[uint64][]int32
	vecs   []Ordering
}

func hashOrdering(o Ordering) uint64 {
	h := uint64(fnvOffset64)
	for _, t := range o {
		h = (h ^ uint64(t)) * fnvPrime64
	}
	return (h ^ uint64(len(o))) * fnvPrime64
}

func (oi *orderingInterner) intern(o Ordering) int32 {
	h := hashOrdering(o)
	oi.mu.RLock()
	for _, id := range oi.byHash[h] {
		if equalOrdering(oi.vecs[id], o) {
			oi.mu.RUnlock()
			return id
		}
	}
	oi.mu.RUnlock()

	oi.mu.Lock()
	defer oi.mu.Unlock()
	if oi.byHash == nil {
		oi.byHash = make(map[uint64][]int32)
	}
	for _, id := range oi.byHash[h] {
		if equalOrdering(oi.vecs[id], o) {
			return id
		}
	}
	id := int32(len(oi.vecs))
	oi.vecs = append(oi.vecs, o.Clone())
	oi.byHash[h] = append(oi.byHash[h], id)
	return id
}

// lookup resolves an ordering's interned ID without inserting on a
// miss — the read-through half of the cache-bypass path, which must not
// grow the intern tables for throwaway partial orderings.
func (oi *orderingInterner) lookup(o Ordering) (int32, bool) {
	h := hashOrdering(o)
	oi.mu.RLock()
	defer oi.mu.RUnlock()
	for _, id := range oi.byHash[h] {
		if equalOrdering(oi.vecs[id], o) {
			return id, true
		}
	}
	return 0, false
}

func (oi *orderingInterner) size() int {
	oi.mu.RLock()
	defer oi.mu.RUnlock()
	return len(oi.vecs)
}

func equalOrdering(a, b Ordering) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// thresholdInterner is the float-vector analogue, keyed on exact bit
// patterns. Bit-exact keys are stricter than the old 12-significant-digit
// string keys, which could alias two thresholds differing only past the
// 12th digit onto one cache entry.
type thresholdInterner struct {
	mu     sync.RWMutex
	byHash map[uint64][]int32
	vecs   []Thresholds
}

func hashThresholds(b Thresholds) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range b {
		h = (h ^ math.Float64bits(v)) * fnvPrime64
	}
	return (h ^ uint64(len(b))) * fnvPrime64
}

func (ti *thresholdInterner) intern(b Thresholds) int32 {
	h := hashThresholds(b)
	ti.mu.RLock()
	for _, id := range ti.byHash[h] {
		if equalThresholds(ti.vecs[id], b) {
			ti.mu.RUnlock()
			return id
		}
	}
	ti.mu.RUnlock()

	ti.mu.Lock()
	defer ti.mu.Unlock()
	if ti.byHash == nil {
		ti.byHash = make(map[uint64][]int32)
	}
	for _, id := range ti.byHash[h] {
		if equalThresholds(ti.vecs[id], b) {
			return id
		}
	}
	id := int32(len(ti.vecs))
	ti.vecs = append(ti.vecs, b.Clone())
	ti.byHash[h] = append(ti.byHash[h], id)
	return id
}

// lookup resolves a threshold vector's interned ID without inserting.
func (ti *thresholdInterner) lookup(b Thresholds) (int32, bool) {
	h := hashThresholds(b)
	ti.mu.RLock()
	defer ti.mu.RUnlock()
	for _, id := range ti.byHash[h] {
		if equalThresholds(ti.vecs[id], b) {
			return id, true
		}
	}
	return 0, false
}

func (ti *thresholdInterner) size() int {
	ti.mu.RLock()
	defer ti.mu.RUnlock()
	return len(ti.vecs)
}

func equalThresholds(a, b Thresholds) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// palShardCount shards the result cache so concurrent solvers hit
// different locks; must be a power of two.
const palShardCount = 16

type palShard struct {
	mu sync.RWMutex
	m  map[uint64][]float64
}

// palKey packs the interned IDs into one cache key.
func palKey(oid, bid int32) uint64 {
	return uint64(uint32(oid))<<32 | uint64(uint32(bid))
}

// palShardOf spreads keys across shards with a splitmix64 finalizer, so
// sequentially issued IDs don't pile onto one shard.
func palShardOf(key uint64) int {
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	key *= 0x94d049bb133111eb
	key ^= key >> 31
	return int(key & (palShardCount - 1))
}

func (in *Instance) cacheGet(key uint64) ([]float64, bool) {
	s := &in.palShards[palShardOf(key)]
	s.mu.RLock()
	pal, ok := s.m[key]
	s.mu.RUnlock()
	return pal, ok
}

// cachePut stores pal and reports whether the key was newly inserted.
// Two goroutines may compute the same missing key concurrently; their
// results are bitwise-identical (see the determinism contract above), so
// the overwrite is harmless, but only the first insert counts toward
// PalEvals — keeping the accounting deterministic under parallel solvers.
func (in *Instance) cachePut(key uint64, pal []float64) bool {
	s := &in.palShards[palShardOf(key)]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[uint64][]float64)
	}
	_, existed := s.m[key]
	s.m[key] = pal
	s.mu.Unlock()
	return !existed
}

// Pal returns the per-type detection probabilities Pal(o,b,t) of Eq. 1:
// the expected audited fraction of type-t alerts under ordering o and
// thresholds b. Types absent from a partial ordering o get probability 0.
//
// The expectation follows the paper's budget recursion: under realization
// Z, earlier types in the order consume min{b_t, Z_t·C_t} budget; the
// budget left for type t admits ⌊·/C_t⌋ audits, further capped by the
// threshold and the realized count. Eq. 1's ratio n_t/Z_t is evaluated at
// Z′_t = max(Z_t, 1): the attack's own alert makes the bin non-empty, and
// the "attacks are rare" approximation keeps benign consumption at Z_t.
//
// Results are cached per (ordering, threshold); the hit path performs no
// allocation. The returned slice is shared — callers must not mutate it.
func (in *Instance) Pal(o Ordering, b Thresholds) []float64 {
	key := palKey(in.orderings.intern(o), in.thresholds.intern(b))
	if pal, ok := in.cacheGet(key); ok {
		return pal
	}
	pal := in.palCompute([]Ordering{o}, b)[0]
	if in.cachePut(key, pal) {
		in.palEvals.Add(1)
	}
	return pal
}

// PalBatch returns Pal(o,b) for every ordering in os, evaluating all
// cache misses together in a single pass over the realization matrix.
// Row k of the result corresponds to os[k]; rows are shared cache entries
// and must not be mutated. Batching amortizes the per-realization row
// loads across orderings and gives the parallel kernel enough work to
// shard realizations across workers.
func (in *Instance) PalBatch(os []Ordering, b Thresholds) [][]float64 {
	out := make([][]float64, len(os))
	bid := in.thresholds.intern(b)
	keys := make([]uint64, len(os))
	var missIdx []int
	var missOrd []Ordering
	for k, o := range os {
		keys[k] = palKey(in.orderings.intern(o), bid)
		if pal, ok := in.cacheGet(keys[k]); ok {
			out[k] = pal
		} else {
			missIdx = append(missIdx, k)
			missOrd = append(missOrd, o)
		}
	}
	if len(missOrd) > 0 {
		pals := in.palCompute(missOrd, b)
		var inserted int64
		for j, k := range missIdx {
			out[k] = pals[j]
			if in.cachePut(keys[k], pals[j]) {
				inserted++
			}
		}
		in.palEvals.Add(inserted)
	}
	return out
}

// PalBatchNoCache evaluates the orderings like PalBatch but never grows
// the cache or the intern tables: already-cached entries are still
// served (read-through), misses are computed and returned without being
// stored. The pricing oracle's partial orderings are evaluated once and
// never looked up again — caching ~|T|²/2 of them per generated column
// only bloats the tables. Returned miss rows are freshly allocated and
// owned by the caller; hit rows are shared cache entries and must not be
// mutated.
func (in *Instance) PalBatchNoCache(os []Ordering, b Thresholds) [][]float64 {
	out := make([][]float64, len(os))
	var missIdx []int
	var missOrd []Ordering
	if bid, ok := in.thresholds.lookup(b); ok {
		for k, o := range os {
			if oid, ok := in.orderings.lookup(o); ok {
				if pal, hit := in.cacheGet(palKey(oid, bid)); hit {
					out[k] = pal
					continue
				}
			}
			missIdx = append(missIdx, k)
			missOrd = append(missOrd, o)
		}
	} else {
		missIdx = make([]int, len(os))
		missOrd = os
		for k := range os {
			missIdx[k] = k
		}
	}
	if len(missOrd) > 0 {
		pals := in.palCompute(missOrd, b)
		for j, k := range missIdx {
			out[k] = pals[j]
		}
		in.palEvals.Add(int64(len(missOrd)))
	}
	return out
}

// CacheStats reports the sizes of the pal result cache and the two
// intern tables — the quantities the cache-bounding tests assert stay
// flat while the oracle churns through throwaway partial orderings.
func (in *Instance) CacheStats() (pals, orderings, thresholds int) {
	for s := range in.palShards {
		sh := &in.palShards[s]
		sh.mu.RLock()
		pals += len(sh.m)
		sh.mu.RUnlock()
	}
	return pals, in.orderings.size(), in.thresholds.size()
}

// palChunkRows is the fixed realization-chunk size. Boundaries depend
// only on the matrix, never on the worker count, which is what makes the
// merged result independent of parallelism.
const palChunkRows = 1024

// palParallelMinWork is the rows×orderings product below which the
// dispatch loop stays serial; tiny evaluations aren't worth goroutines.
const palParallelMinWork = 8192

// palComputeReference evaluates each ordering independently against the
// realization matrix — the pre-trie kernel, kept as the reference
// implementation the equivalence goldens pin palCompute (trie.go)
// against, bit for bit.
func (in *Instance) palComputeReference(os []Ordering, b Thresholds) [][]float64 {
	nT := len(in.G.Types)
	nRows := len(in.ws)
	nChunks := (nRows + palChunkRows - 1) / palChunkRows

	// Per-ordering constants hoisted out of the realization loop:
	// position costs, audit caps ⌊b_t/C_t⌋, position thresholds, and the
	// suffix-minimum cost that lets the kernel stop a row early once the
	// remaining budget can't buy any further audit.
	costs := make([][]float64, len(os))
	caps := make([][]float64, len(os))
	bpos := make([][]float64, len(os))
	sufMin := make([][]float64, len(os))
	for k, o := range os {
		costs[k] = make([]float64, len(o))
		caps[k] = make([]float64, len(o))
		bpos[k] = make([]float64, len(o))
		sufMin[k] = make([]float64, len(o))
		for i, t := range o {
			costs[k][i] = in.G.Types[t].Cost
			caps[k][i] = math.Floor(b[t] / costs[k][i])
			bpos[k][i] = b[t]
		}
		m := math.Inf(1)
		for i := len(o) - 1; i >= 0; i-- {
			if costs[k][i] < m {
				m = costs[k][i]
			}
			sufMin[k][i] = m
		}
	}

	// Work units are (chunk, ordering) cells: each writes a disjoint
	// nT-wide span of its chunk's scratch, so cells parallelize freely in
	// both dimensions — many orderings over a small matrix fan out just
	// as well as one ordering over a large one — without touching the
	// fixed chunk boundaries the determinism contract depends on.
	partials := make([][]float64, nChunks)
	for c := range partials {
		partials[c] = make([]float64, len(os)*nT)
	}
	cell := func(unit int) {
		if err := fault.Inject(fault.PalWorker); err != nil {
			// The kernel has no error return; panic-only point. The
			// worker containment below (or, on the serial path, the
			// solver entry guard) turns it back into a typed error.
			panic(err)
		}
		c, k := unit/len(os), unit%len(os)
		lo := c * palChunkRows
		hi := lo + palChunkRows
		if hi > nRows {
			hi = nRows
		}
		in.palChunk(lo, hi, os[k], costs[k], caps[k], bpos[k], sufMin[k], partials[c][k*nT:(k+1)*nT])
	}

	nUnits := nChunks * len(os)
	if workers := in.workerCount(nUnits, nRows*len(os)); workers > 1 {
		// Panic containment: a panicking worker must not kill the
		// process (callers above the solver entry points expect a typed
		// error) and must not strand its siblings. The first panic value
		// is captured here; the panicking worker exits, the remaining
		// workers drain the remaining units, wg.Wait returns, and the
		// panic is re-raised on the calling goroutine, where the solver
		// entry guard converts it to a *SolveError.
		var panicked atomic.Pointer[palPanic]
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicked.CompareAndSwap(nil, &palPanic{val: r})
					}
				}()
				for {
					u := int(next.Add(1)) - 1
					if u >= nUnits {
						return
					}
					cell(u)
				}
			}()
		}
		wg.Wait()
		if p := panicked.Load(); p != nil {
			panic(p.val)
		}
	} else {
		for u := 0; u < nUnits; u++ {
			cell(u)
		}
	}

	// Deterministic merge: chunk-index order, every worker count.
	backing := make([]float64, len(os)*nT)
	out := make([][]float64, len(os))
	for k := range os {
		out[k] = backing[k*nT : (k+1)*nT : (k+1)*nT]
	}
	for c := 0; c < nChunks; c++ {
		for i, v := range partials[c] {
			backing[i] += v
		}
	}
	return out
}

// palChunk accumulates the contribution of realization rows [lo, hi) for
// one ordering into accRow (nT wide). This is the innermost loop of every
// solver; it avoids math.Min's NaN bookkeeping, trades the per-element
// count division for the precomputed reciprocal matrix, and bails out of
// a row once the remaining budget is below the cheapest remaining audit
// cost. The chunk's rows stay cache-hot across the orderings that walk
// it, per-ordering constants hoist out of the row loop, and consecutive
// rows carry no data dependency, so their budget-recursion chains overlap
// in flight.
func (in *Instance) palChunk(lo, hi int, o Ordering, ck, capk, bk, mink, accRow []float64) {
	nT := in.nT
	budget := in.Budget
	zs := in.zs
	zrecip := in.zrecip
	ws := in.ws
	for zi := lo; zi < hi; zi++ {
		base := zi * nT
		row := zs[base : base+nT]
		recip := zrecip[base : base+nT]
		w := ws[zi]
		spent := 0.0
		for i, t := range o {
			rem := budget - spent
			if rem < mink[i] {
				break // no remaining type can afford one audit
			}
			ct := ck[i]
			var avail float64
			if ct == 1 {
				avail = math.Floor(rem)
			} else {
				avail = math.Floor(rem / ct)
			}
			zt := row[t]
			ztEff := zt
			if ztEff < 1 {
				ztEff = 1
			}
			nt := avail
			if c := capk[i]; c < nt {
				nt = c
			}
			if ztEff < nt {
				nt = ztEff
			}
			if nt > 0 {
				accRow[t] += w * nt * recip[t]
			}
			s := zt * ct
			if bt := bk[i]; bt < s {
				s = bt
			}
			spent += s
		}
	}
}

// workerCount resolves the sharding width for one evaluation: Workers
// when set, else GOMAXPROCS, clamped to the (chunk × ordering) work-unit
// count and to 1 when the total work is too small to amortize goroutine
// handoff.
func (in *Instance) workerCount(nUnits, work int) int {
	w := in.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > nUnits {
		w = nUnits
	}
	if work < palParallelMinWork {
		return 1
	}
	return w
}

// PalEvals returns the number of uncached Pal computations performed,
// used by the instrumentation in Table VII-style accounting and the
// estimator ablations.
func (in *Instance) PalEvals() int {
	return int(in.palEvals.Load())
}

// NumRealizations returns the number of distinct realization rows the
// engine iterates — the materialized source size after weight-merging
// deduplication.
func (in *Instance) NumRealizations() int { return len(in.ws) }
