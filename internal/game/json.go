package game

import (
	"encoding/json"
	"fmt"
	"io"

	"auditgame/internal/dist"
)

// The JSON game format lets deployments describe an audit game in a
// config file: alert types with serializable count-distribution specs,
// entities, victims, and the attack matrix. DecodeJSON is the entry point
// the auditpolicy CLI uses.

// gameJSON is the wire schema.
type gameJSON struct {
	Types         []typeJSON   `json:"types"`
	Entities      []entityJSON `json:"entities"`
	Victims       []string     `json:"victims"`
	Attacks       [][]atkJSON  `json:"attacks"`
	AllowNoAttack bool         `json:"allow_no_attack"`
}

type typeJSON struct {
	Name string    `json:"name"`
	Cost float64   `json:"cost"`
	Dist dist.Spec `json:"dist"`
}

type entityJSON struct {
	Name    string  `json:"name"`
	PAttack float64 `json:"p_attack"`
}

type atkJSON struct {
	// Type is the 1-based alert type raised deterministically, or 0
	// for a benign access. TypeProbs, when present, overrides it with
	// a full stochastic map.
	Type      int       `json:"type,omitempty"`
	TypeProbs []float64 `json:"type_probs,omitempty"`
	Benefit   float64   `json:"benefit"`
	Penalty   float64   `json:"penalty"`
	Cost      float64   `json:"cost"`
}

// DecodeJSON reads a game description and validates it.
func DecodeJSON(r io.Reader) (*Game, error) {
	var raw gameJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("game: decode: %w", err)
	}

	g := &Game{AllowNoAttack: raw.AllowNoAttack, Victims: raw.Victims}
	for i, t := range raw.Types {
		// Shared interns tables by canonical spec, so types repeating a
		// distribution spec share one PMF/CDF table.
		d, err := dist.Shared(t.Dist)
		if err != nil {
			return nil, fmt.Errorf("game: type %d (%s): %w", i, t.Name, err)
		}
		g.Types = append(g.Types, AlertType{Name: t.Name, Cost: t.Cost, Dist: d})
	}
	for _, e := range raw.Entities {
		g.Entities = append(g.Entities, Entity{Name: e.Name, PAttack: e.PAttack})
	}
	nT := len(g.Types)
	g.Attacks = make([][]Attack, len(raw.Attacks))
	for e, row := range raw.Attacks {
		g.Attacks[e] = make([]Attack, len(row))
		for v, a := range row {
			atk := Attack{Benefit: a.Benefit, Penalty: a.Penalty, Cost: a.Cost}
			switch {
			case a.TypeProbs != nil:
				atk.TypeProbs = a.TypeProbs
			case a.Type == 0:
				atk.TypeProbs = make([]float64, nT)
			default:
				if a.Type < 1 || a.Type > nT {
					return nil, fmt.Errorf("game: attack [%d][%d] has type %d outside 1..%d", e, v, a.Type, nT)
				}
				atk.TypeProbs = make([]float64, nT)
				atk.TypeProbs[a.Type-1] = 1
			}
			g.Attacks[e][v] = atk
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// TemplateJSON returns a commented-by-example game description: a small
// two-type deployment users can copy and edit.
func TemplateJSON() string {
	return `{
  "types": [
    {"name": "after-hours access", "cost": 1,
     "dist": {"kind": "gaussian", "mean": 6, "std": 2, "coverage": 0.995}},
    {"name": "masquerade login", "cost": 2,
     "dist": {"kind": "poisson", "lambda": 3, "coverage": 0.999}}
  ],
  "entities": [
    {"name": "contractor", "p_attack": 0.3},
    {"name": "dba", "p_attack": 0.1}
  ],
  "victims": ["payroll-db", "customer-db"],
  "attacks": [
    [{"type": 1, "benefit": 9, "penalty": 12, "cost": 1},
     {"type": 2, "benefit": 7, "penalty": 12, "cost": 1}],
    [{"type": 1, "benefit": 5, "penalty": 12, "cost": 1},
     {"type": 2, "benefit": 11, "penalty": 12, "cost": 1}]
  ],
  "allow_no_attack": true
}
`
}
