package game

import (
	"math"
	"testing"

	"auditgame/internal/dist"
	"auditgame/internal/sample"
)

// extInstance builds a 2-type instance with known detection
// probabilities: budget 3, thresholds (2,2), counts fixed at 2 give
// pal = (1, 0.5) under ordering (0,1).
func extInstance(t *testing.T) *Instance {
	t.Helper()
	g := &Game{
		Types: []AlertType{
			{Name: "A", Cost: 1, Dist: dist.NewPoint(2)},
			{Name: "B", Cost: 1, Dist: dist.NewPoint(2)},
		},
		Entities: []Entity{{Name: "e1", PAttack: 1}},
		Victims:  []string{"v1", "v2"},
		Attacks: [][]Attack{{
			DeterministicAttack(2, 0, 5, 10, 1),
			DeterministicAttack(2, 1, 4, 10, 1),
		}},
	}
	src, err := sample.NewEnumerator(g.Dists(), 100)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(g, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func singleOrderingPolicy() ([]Ordering, []float64) {
	return []Ordering{{0, 1}}, []float64{1}
}

func TestAuditorLossNilRecoversZeroSum(t *testing.T) {
	in := extInstance(t)
	Q, po := singleOrderingPolicy()
	b := Thresholds{2, 2}
	got, err := in.AuditorLoss(Q, po, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := in.Loss(Q, po, b)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AuditorLoss(nil) = %v, want zero-sum %v", got, want)
	}
}

func TestAuditorLossUsesAttackerBestResponse(t *testing.T) {
	in := extInstance(t)
	Q, po := singleOrderingPolicy()
	b := Thresholds{2, 2}
	// Ua(v1) = −10·1 + 0·5 − 1 = −11; Ua(v2) = −5 + 2 − 1 = −4.
	// Attacker picks v2 (pat = 0.5). Auditor exposure = (1−0.5)·L(v2).
	lossFn := func(e, v int) float64 {
		return []float64{100, 8}[v]
	}
	got, err := in.AuditorLoss(Q, po, b, lossFn)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("AuditorLoss = %v, want 4 (= 0.5·8 at the attacker's choice)", got)
	}
}

func TestAuditorLossPessimisticTieBreak(t *testing.T) {
	in := extInstance(t)
	// Make both victims utility-equivalent for the attacker but very
	// different for the auditor.
	in.G.Attacks[0][1] = in.G.Attacks[0][0]
	src, _ := sample.NewEnumerator(in.G.Dists(), 100)
	in2, err := NewInstance(in.G, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	Q, po := singleOrderingPolicy()
	b := Thresholds{2, 2}
	lossFn := func(e, v int) float64 { return []float64{1, 50}[v] }
	got, err := in2.AuditorLoss(Q, po, b, lossFn)
	if err != nil {
		t.Fatal(err)
	}
	// Both victims are type-0 attacks with pat = 1 → exposure
	// (1−1)·L = 0 either way here; use thresholds that leave pat < 1.
	b = Thresholds{1, 1}
	got, err = in2.AuditorLoss(Q, po, b, lossFn)
	if err != nil {
		t.Fatal(err)
	}
	pal := in2.Pal(Q[0], b)
	want := (1 - pal[0]) * 50 // pessimistic: the 50-loss victim
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("AuditorLoss = %v, want pessimistic %v", got, want)
	}
}

func TestAuditorLossRefrainWhenEverythingNegative(t *testing.T) {
	in := extInstance(t)
	in.G.AllowNoAttack = true
	src, _ := sample.NewEnumerator(in.G.Dists(), 100)
	in2, err := NewInstance(in.G, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	Q, po := singleOrderingPolicy()
	b := Thresholds{2, 2}
	// Both attacks have negative Ua (−11, −4) → refrain → zero loss
	// regardless of lossFn.
	got, err := in2.AuditorLoss(Q, po, b, func(e, v int) float64 { return 1000 })
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("AuditorLoss = %v, want 0 (deterred)", got)
	}
}

func TestQuantalLossLimits(t *testing.T) {
	in := extInstance(t)
	Q, po := singleOrderingPolicy()
	b := Thresholds{2, 2}
	// λ → ∞ recovers the best response (−4 here).
	sharp, err := in.QuantalLoss(Q, po, b, QuantalConfig{Lambda: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	want := in.Loss(Q, po, b)
	if math.Abs(sharp-want) > 1e-6 {
		t.Fatalf("λ→∞ quantal loss = %v, want best response %v", sharp, want)
	}
	// λ = 0 is the uniform mixture over victims: (−11 + −4)/2 = −7.5.
	uniform, err := in.QuantalLoss(Q, po, b, QuantalConfig{Lambda: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(uniform-(-7.5)) > 1e-9 {
		t.Fatalf("λ=0 quantal loss = %v, want -7.5", uniform)
	}
}

func TestQuantalLossMonotoneInLambda(t *testing.T) {
	// Sharper adversaries exploit the policy better: quantal loss is
	// non-decreasing in λ.
	in := extInstance(t)
	Q, po := singleOrderingPolicy()
	b := Thresholds{2, 2}
	prev := math.Inf(-1)
	for _, lambda := range []float64{0, 0.25, 0.5, 1, 2, 4, 16} {
		got, err := in.QuantalLoss(Q, po, b, QuantalConfig{Lambda: lambda})
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-1e-9 {
			t.Fatalf("quantal loss decreased at λ=%v: %v after %v", lambda, got, prev)
		}
		prev = got
	}
}

func TestQuantalLossIncludesRefrain(t *testing.T) {
	in := extInstance(t)
	in.G.AllowNoAttack = true
	src, _ := sample.NewEnumerator(in.G.Dists(), 100)
	in2, err := NewInstance(in.G, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	Q, po := singleOrderingPolicy()
	b := Thresholds{2, 2}
	// λ = 0 with refrain: (−11 + −4 + 0)/3 = −5.
	got, err := in2.QuantalLoss(Q, po, b, QuantalConfig{Lambda: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(-5)) > 1e-9 {
		t.Fatalf("quantal loss = %v, want -5", got)
	}
}

func TestMultiPeriodLossKOneMatchesOneShot(t *testing.T) {
	in := extInstance(t)
	Q, po := singleOrderingPolicy()
	b := Thresholds{2, 2}
	got, err := in.MultiPeriodLoss(Q, po, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := in.Loss(Q, po, b)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("k=1 multi-period %v != one-shot %v", got, want)
	}
}

func TestMultiPeriodLossMonotoneInDuration(t *testing.T) {
	// Longer attacks face compounding detection: the auditor's loss is
	// non-increasing in k.
	in := extInstance(t)
	Q, po := singleOrderingPolicy()
	b := Thresholds{2, 2}
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		got, err := in.MultiPeriodLoss(Q, po, b, k)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev+1e-9 {
			t.Fatalf("loss rose with duration at k=%d: %v after %v", k, got, prev)
		}
		prev = got
	}
}

func TestMultiPeriodLossHandComputed(t *testing.T) {
	// pal = (1, 0.5); attack on v2 has pat = 0.5, R=4, M=10, K=1.
	// k=2: survive = 0.25 → ua = −0.75·10 + 0.25·4 − 1 = −7.5.
	// Attack on v1 has pat = 1 → ua = −11 for any k. Best = −7.5.
	in := extInstance(t)
	Q, po := singleOrderingPolicy()
	got, err := in.MultiPeriodLoss(Q, po, Thresholds{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(-7.5)) > 1e-9 {
		t.Fatalf("k=2 loss = %v, want -7.5", got)
	}
}

func TestMultiPeriodLossValidation(t *testing.T) {
	in := extInstance(t)
	Q, po := singleOrderingPolicy()
	if _, err := in.MultiPeriodLoss(Q, po, Thresholds{2, 2}, 0); err == nil {
		t.Fatal("expected error for k = 0")
	}
	if _, err := in.MultiPeriodLoss(Q, []float64{2}, Thresholds{2, 2}, 1); err == nil {
		t.Fatal("expected error for bad policy")
	}
}

func TestExtensionValidation(t *testing.T) {
	in := extInstance(t)
	b := Thresholds{2, 2}
	if _, err := in.QuantalLoss(nil, nil, b, QuantalConfig{Lambda: 1}); err == nil {
		t.Fatal("expected error for empty policy")
	}
	if _, err := in.QuantalLoss([]Ordering{{0, 1}}, []float64{0.5}, b, QuantalConfig{Lambda: 1}); err == nil {
		t.Fatal("expected error for non-normalized policy")
	}
	if _, err := in.QuantalLoss([]Ordering{{0, 1}}, []float64{1}, b, QuantalConfig{Lambda: -1}); err == nil {
		t.Fatal("expected error for negative lambda")
	}
	if _, err := in.AuditorLoss([]Ordering{{0, 1}}, []float64{2}, b, func(e, v int) float64 { return 0 }); err == nil {
		t.Fatal("expected error for bad probabilities")
	}
}
