package game

import (
	"math"
	"testing"

	"auditgame/internal/sample"
)

// TestPalGridSweepMatchesBatch pins the grid-swept table against the
// fixed-threshold batch kernel: at every grid point, every ordering's
// pal vector must match PalBatchNoCache bit for bit.
func TestPalGridSweepMatchesBatch(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := trieTestGame(4, seed)
		in := mustInstance(t, g, 6)
		os := AllOrderings(4)
		steps := []int{3, 2, 3, 2}
		pg := in.PalGridSweep(os, steps)
		if pg == nil {
			t.Fatalf("seed %d: sweep refused a %v grid", seed, steps)
		}
		ks := make([]int, 4)
		b := make(Thresholds, 4)
		var rec func(t0 int)
		rec = func(t0 int) {
			if t0 == 4 {
				for t2 := range b {
					b[t2] = float64(ks[t2]) * in.G.Types[t2].Cost
				}
				want := in.PalBatchNoCache(os, b)
				got := pg.Pals(ks)
				for o := range os {
					for ty := 0; ty < 4; ty++ {
						if math.Float64bits(got[o][ty]) != math.Float64bits(want[o][ty]) {
							t.Fatalf("seed %d ks=%v ordering %v: pal[%d] = %v, batch kernel says %v",
								seed, ks, os[o], ty, got[o][ty], want[o][ty])
						}
					}
				}
				return
			}
			for k := 0; k <= steps[t0]; k++ {
				ks[t0] = k
				rec(t0 + 1)
			}
		}
		rec(0)
	}
}

// TestPalGridSweepRefusals covers the fallback conditions: oversized
// tables, partial orderings, and duplicate orderings all return nil
// rather than a wrong or gigantic table.
func TestPalGridSweepRefusals(t *testing.T) {
	g := trieTestGame(4, 1)
	in := mustInstance(t, g, 6)
	if pg := in.PalGridSweep(AllOrderings(4), []int{9999, 9999, 9999, 9999}); pg != nil {
		t.Fatal("sweep accepted a grid far past the memory cap")
	}
	if pg := in.PalGridSweep([]Ordering{{0, 1}}, []int{1, 1, 1, 1}); pg != nil {
		t.Fatal("sweep accepted a partial ordering")
	}
	if pg := in.PalGridSweep([]Ordering{{0, 1, 2, 3}, {0, 1, 2, 3}}, []int{1, 1, 1, 1}); pg != nil {
		t.Fatal("sweep accepted duplicate orderings")
	}
}

func mustInstance(t *testing.T, g *Game, budget float64) *Instance {
	t.Helper()
	in, err := NewInstance(g, budget, sample.NewBank(g.Dists(), 500, 42))
	if err != nil {
		t.Fatal(err)
	}
	return in
}
