package dist

import (
	"fmt"
	"math"
	"sync"
)

// StreamEstimator maintains a sliding-window model of one alert type's
// per-period count, for deployments that refit their workload
// distribution as audit days accumulate (the practical answer to the
// paper's known-F_t assumption of §II-A). Observations beyond the
// window evict the oldest, so the model tracks drift with bounded
// memory.
//
// It is safe for concurrent use: the serving path observes live counts
// while the refit pipeline snapshots the window, so every method takes
// the estimator's mutex. The critical sections are a ring-buffer write
// (Observe) or one pass over the window (the statistics), so contention
// is negligible at any plausible observation rate.
type StreamEstimator struct {
	mu    sync.Mutex
	buf   []int // ring buffer of the most recent observations
	next  int   // index the next observation overwrites
	count int   // observations held, ≤ len(buf)
}

// NewStreamEstimator creates an estimator over the last window periods.
func NewStreamEstimator(window int) (*StreamEstimator, error) {
	if window < 1 {
		return nil, fmt.Errorf("dist: stream window %d must be ≥ 1", window)
	}
	return &StreamEstimator{buf: make([]int, window)}, nil
}

// Observe records one period's count, evicting the oldest observation
// once the window is full. Negative counts are clipped to 0.
func (e *StreamEstimator) Observe(n int) {
	if n < 0 {
		n = 0
	}
	e.mu.Lock()
	e.buf[e.next] = n
	e.next = (e.next + 1) % len(e.buf)
	if e.count < len(e.buf) {
		e.count++
	}
	e.mu.Unlock()
}

// Window returns the configured window size in periods.
func (e *StreamEstimator) Window() int { return len(e.buf) }

// Len returns the number of observations currently in the window.
func (e *StreamEstimator) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count
}

// Mean returns the mean of the windowed observations, or 0 before any
// observation.
func (e *StreamEstimator) Mean() float64 {
	mean, _, _ := e.Stats()
	return mean
}

// Stats returns the window's sample mean, sample (n−1) standard
// deviation, and fill in one consistent snapshot — the tuple drift
// detectors consume, taken under one lock so a concurrent Observe can
// never interleave between the moments. Before any observation it
// returns (0, 0, 0). The window is small, so recomputing on demand is
// cheaper than fighting the rounding drift of incremental sums.
func (e *StreamEstimator) Stats() (mean, std float64, n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statsLocked()
}

// statsLocked computes the window statistics. Callers hold e.mu.
func (e *StreamEstimator) statsLocked() (mean, std float64, n int) {
	if e.count == 0 {
		return 0, 0, 0
	}
	sum := 0
	for _, v := range e.buf[:e.count] {
		sum += v
	}
	mean = float64(sum) / float64(e.count)
	var ss float64
	for _, v := range e.buf[:e.count] {
		d := float64(v) - mean
		ss += d * d
	}
	if e.count > 1 {
		std = math.Sqrt(ss / float64(e.count-1))
	}
	return mean, std, e.count
}

// SnapshotSpec freezes the window into the serializable description of
// a discretized Gaussian at the given two-sided coverage — the form the
// refit pipeline persists and rebuilds games from (a constant window
// degenerates to a point mass via Spec.Build's std = 0 path). It errors
// if nothing has been observed yet.
func (e *StreamEstimator) SnapshotSpec(coverage float64) (Spec, error) {
	if !(coverage > 0 && coverage < 1) {
		return Spec{}, fmt.Errorf("dist: coverage %v must be in (0, 1)", coverage)
	}
	mean, std, n := e.Stats()
	if n == 0 {
		return Spec{}, fmt.Errorf("dist: stream estimator has no observations")
	}
	return Spec{Kind: "gaussian", Mean: mean, Std: std, Coverage: coverage}, nil
}

// SnapshotGaussian freezes the window into a discretized Gaussian at
// the given two-sided coverage, using the sample standard deviation
// (a single observation, or identical ones, yield a point mass). It
// errors if nothing has been observed yet.
func (e *StreamEstimator) SnapshotGaussian(coverage float64) (Distribution, error) {
	spec, err := e.SnapshotSpec(coverage)
	if err != nil {
		return nil, err
	}
	return spec.Build()
}
