package dist

import (
	"fmt"
	"math"
)

// StreamEstimator maintains a sliding-window model of one alert type's
// per-period count, for deployments that refit their workload
// distribution as audit days accumulate (the practical answer to the
// paper's known-F_t assumption of §II-A). Observations beyond the
// window evict the oldest, so the model tracks drift with bounded
// memory. It is not safe for concurrent use.
type StreamEstimator struct {
	buf   []int // ring buffer of the most recent observations
	next  int   // index the next observation overwrites
	count int   // observations held, ≤ len(buf)
}

// NewStreamEstimator creates an estimator over the last window periods.
func NewStreamEstimator(window int) (*StreamEstimator, error) {
	if window < 1 {
		return nil, fmt.Errorf("dist: stream window %d must be ≥ 1", window)
	}
	return &StreamEstimator{buf: make([]int, window)}, nil
}

// Observe records one period's count, evicting the oldest observation
// once the window is full. Negative counts are clipped to 0.
func (e *StreamEstimator) Observe(n int) {
	if n < 0 {
		n = 0
	}
	e.buf[e.next] = n
	e.next = (e.next + 1) % len(e.buf)
	if e.count < len(e.buf) {
		e.count++
	}
}

// Len returns the number of observations currently in the window.
func (e *StreamEstimator) Len() int { return e.count }

// Mean returns the mean of the windowed observations, or 0 before any
// observation. The window is small, so recomputing on demand is cheaper
// than fighting the rounding drift of incremental sums.
func (e *StreamEstimator) Mean() float64 {
	if e.count == 0 {
		return 0
	}
	sum := 0
	for _, n := range e.buf[:e.count] {
		sum += n
	}
	return float64(sum) / float64(e.count)
}

// SnapshotGaussian freezes the window into a discretized Gaussian at
// the given two-sided coverage, using the sample standard deviation
// (a single observation, or identical ones, yield a point mass). It
// errors if nothing has been observed yet.
func (e *StreamEstimator) SnapshotGaussian(coverage float64) (Distribution, error) {
	if e.count == 0 {
		return nil, fmt.Errorf("dist: stream estimator has no observations")
	}
	if !(coverage > 0 && coverage < 1) {
		return nil, fmt.Errorf("dist: coverage %v must be in (0, 1)", coverage)
	}
	mean := e.Mean()
	var ss float64
	for _, n := range e.buf[:e.count] {
		d := float64(n) - mean
		ss += d * d
	}
	std := 0.0
	if e.count > 1 {
		std = math.Sqrt(ss / float64(e.count-1))
	}
	return newGaussian(mean, std, coverage)
}
