package dist

import (
	"strconv"
	"sync"
)

// Distributions are immutable after construction (the backing table is
// never written again and Sample draws randomness from the caller's
// source), so two alert types described by the same Spec can safely
// share one PMF/CDF table. Scaled workloads stamp dozens of types out
// of a handful of Spec templates, and games loaded from JSON routinely
// repeat a spec across types; without sharing, every repeat rebuilds
// and stores an identical table.

// sharedTables interns built distributions keyed by the canonical spec
// encoding. The lock is held across the build: builds are
// construction-time only and cheap relative to the tables they avoid
// duplicating, and holding it guarantees one build per spec even under
// concurrent callers.
var sharedTables = struct {
	sync.Mutex
	m map[string]Distribution
}{m: make(map[string]Distribution)}

// Shared builds the distribution described by s, returning a shared
// instance when an identical spec has been built before. The returned
// Distribution must be treated as read-only, which the Distribution
// interface already guarantees. Only successful builds are interned.
//
// Empirical specs are built directly rather than interned: their key
// space is the observation list itself, so a long-lived process fitting
// from changing data would grow the table forever. Callers stamping
// many types from one empirical fit should build it once and assign
// the result to each type (as the scaled workload generator does); the
// parametric kinds, whose universe is the configured template set, are
// the sharing win this cache exists for.
func Shared(s Spec) (Distribution, error) {
	if s.Kind == "empirical" {
		return s.Build()
	}
	key := s.canonicalKey()
	sharedTables.Lock()
	defer sharedTables.Unlock()
	if d, ok := sharedTables.m[key]; ok {
		return d, nil
	}
	d, err := s.Build()
	if err != nil {
		return nil, err
	}
	sharedTables.m[key] = d
	return d, nil
}

// canonicalKey encodes exactly the fields Build reads for the spec's
// kind, so two specs that build identical distributions — e.g. a
// gaussian with HalfWidth set and differing leftover Coverage values —
// map to one key. Empirical specs never reach here (Shared builds them
// directly).
func (s Spec) canonicalKey() string {
	b := make([]byte, 0, 48)
	b = append(b, s.Kind...)
	sep := func() { b = append(b, '|') }
	f := func(v float64) { b = strconv.AppendFloat(b, v, 'g', -1, 64) }
	switch s.Kind {
	case "gaussian":
		sep()
		f(s.Mean)
		sep()
		f(s.Std)
		sep()
		if s.HalfWidth != 0 {
			b = append(b, 'w')
			b = strconv.AppendInt(b, int64(s.HalfWidth), 10)
		} else {
			b = append(b, 'c')
			f(s.Coverage)
		}
	case "poisson":
		sep()
		f(s.Lambda)
		sep()
		f(s.Coverage)
	case "point", "soliton":
		sep()
		b = strconv.AppendInt(b, int64(s.N), 10)
	}
	return string(b)
}
