// Package dist provides the discrete alert-count distributions that
// parameterize the audit game: the per-type benign count Z_t of §II-A.
// Every distribution is materialized at construction into a dense
// PMF/CDF table over a finite integer support, so the two operations on
// the solver hot path are cheap: PMF is a single slice index (the exact
// enumerator in internal/sample calls it for every point of every
// type's support on every joint realization) and Sample is one binary
// search over the CDF. The modelling trade-offs behind the truncation
// and discretization choices are recorded in DESIGN.md.
package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// maxSupportBins caps the dense-table width so a malformed model (a
// huge std, an astronomical λ, a wild empirical outlier) surfaces as a
// constructor error instead of an unbounded allocation. 2²² bins is a
// 33 MB PMF+CDF table, far beyond any plausible alert workload.
const maxSupportBins = 1 << 22

// maxSupportHi caps count values themselves; per-period alert counts
// beyond 2³¹ indicate a broken model, not a big deployment.
const maxSupportHi = 1 << 31

// Distribution is a discrete probability distribution over non-negative
// integer alert counts with finite (possibly truncated) support.
type Distribution interface {
	// Sample draws one count using the supplied source. Distributions
	// hold no random state of their own, so a shared seeded *rand.Rand
	// gives deterministic, reproducible draws.
	Sample(r *rand.Rand) int
	// Support returns the inclusive range [lo, hi] outside which PMF
	// is identically zero.
	Support() (lo, hi int)
	// PMF returns P[Z = n]. It is defined for every n, returning 0
	// outside the support, and is O(1).
	PMF(n int) float64
	// Mean returns E[Z] of the (truncated, renormalized) distribution.
	Mean() float64
}

// table is the shared backing for every distribution kind: a dense PMF
// over [lo, lo+len(pmf)-1] with its running CDF and precomputed mean.
type table struct {
	lo   int
	pmf  []float64
	cdf  []float64
	mean float64
}

// newTable normalizes weights into a table anchored at lo. Edge bins
// whose relative weight is numerical noise (≤ 1e-15 of the total) are
// trimmed so Support stays tight — without this, a large-λ Poisson's
// subnormal lower tail would stretch the support by hundreds of
// zero-information bins and blow up exact joint enumeration. It panics
// if no weight is positive — every constructor guarantees mass.
func newTable(lo int, weights []float64) *table {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic("dist: invalid probability weight")
		}
		total += w
	}
	if total == 0 {
		panic("dist: distribution has no probability mass")
	}
	eps := total * 1e-15
	start, end := 0, len(weights)
	for start < end && weights[start] <= eps {
		start++
	}
	for end > start && weights[end-1] <= eps {
		end--
	}
	lo += start
	weights = weights[start:end]

	total = 0
	for _, w := range weights {
		total += w
	}
	t := &table{
		lo:  lo,
		pmf: make([]float64, len(weights)),
		cdf: make([]float64, len(weights)),
	}
	var cum float64
	for i, w := range weights {
		p := w / total
		t.pmf[i] = p
		cum += p
		t.cdf[i] = cum
		t.mean += float64(lo+i) * p
	}
	t.cdf[len(t.cdf)-1] = 1 // guard against rounding in the last bin
	return t
}

// Sample implements Distribution by inverse-CDF lookup: one uniform
// draw, one O(log n) binary search over the precomputed CDF.
func (t *table) Sample(r *rand.Rand) int {
	u := r.Float64()
	i := sort.SearchFloat64s(t.cdf, u)
	if i == len(t.cdf) {
		i--
	}
	return t.lo + i
}

// Support implements Distribution.
func (t *table) Support() (int, int) { return t.lo, t.lo + len(t.pmf) - 1 }

// PMF implements Distribution with a single bounds-checked slice index.
func (t *table) PMF(n int) float64 {
	i := n - t.lo
	if i < 0 || i >= len(t.pmf) {
		return 0
	}
	return t.pmf[i]
}

// Mean implements Distribution.
func (t *table) Mean() float64 { return t.mean }

// must unwraps an internal builder result for the programmatic
// constructors, which follow the stdlib convention of panicking on
// programmer error; Spec.Build uses the error-returning builders
// directly so config mistakes surface as errors.
func must(d Distribution, err error) Distribution {
	if err != nil {
		panic(err)
	}
	return d
}

// NewPoint returns the point mass at n (a deterministic daily count).
// Negative n is clipped to 0, since counts are non-negative.
func NewPoint(n int) Distribution {
	if n < 0 {
		n = 0
	}
	return newTable(n, []float64{1})
}

// NewEmpirical fits the empirical distribution of the observed
// per-period counts, e.g. daily alert totals from an audit log — the
// F_t(n) estimation step of paper §II-A. It panics on an empty slice or
// a negative count.
func NewEmpirical(counts []int) Distribution { return must(newEmpirical(counts)) }

func newEmpirical(counts []int) (Distribution, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("dist: empirical distribution needs at least one observation")
	}
	lo, hi := counts[0], counts[0]
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("dist: negative count observation %d", c)
		}
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi-lo+1 > maxSupportBins {
		return nil, fmt.Errorf("dist: empirical count range [%d, %d] exceeds %d bins", lo, hi, maxSupportBins)
	}
	weights := make([]float64, hi-lo+1)
	for _, c := range counts {
		weights[c-lo]++
	}
	return newTable(lo, weights), nil
}

// NewGaussian discretizes N(mean, std²) to integer counts: each integer
// n receives the density mass of [n−½, n+½]. The support is truncated
// to the central two-sided coverage interval (the paper uses 0.995),
// clipped at zero, and renormalized. It panics unless std ≥ 0,
// coverage ∈ (0, 1), and the truncated support is non-degenerate. A
// zero std yields the point mass at round(mean).
func NewGaussian(mean, std, coverage float64) Distribution {
	return must(newGaussian(mean, std, coverage))
}

func newGaussian(mean, std, coverage float64) (Distribution, error) {
	if err := checkGaussian(mean, std); err != nil {
		return nil, err
	}
	if !(coverage > 0 && coverage < 1) {
		return nil, fmt.Errorf("dist: gaussian coverage %v must be in (0, 1)", coverage)
	}
	if std == 0 {
		return NewPoint(int(math.Round(mean))), nil
	}
	half := normQuantile((1+coverage)/2) * std
	lo := math.Floor(mean - half)
	hi := math.Ceil(mean + half)
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	if hi > maxSupportHi {
		return nil, fmt.Errorf("dist: gaussian support reaches %g, beyond the %d count cap", hi, maxSupportHi)
	}
	if hi-lo+1 > maxSupportBins {
		return nil, fmt.Errorf("dist: gaussian support [%g, %g] exceeds %d bins", lo, hi, maxSupportBins)
	}
	return gaussianTable(mean, std, int(lo), int(hi))
}

// NewGaussianHalfWidth discretizes N(mean, std²) over the fixed support
// [round(mean)−halfWidth, round(mean)+halfWidth], clipped at zero and
// renormalized. This is the parameterization of the paper's controlled
// dataset (Table II gives each type's mean, std, and support
// half-width). It panics unless std ≥ 0, halfWidth ≥ 0, and the
// clipped support is non-degenerate.
func NewGaussianHalfWidth(mean, std float64, halfWidth int) Distribution {
	return must(newGaussianHalfWidth(mean, std, halfWidth))
}

func newGaussianHalfWidth(mean, std float64, halfWidth int) (Distribution, error) {
	if err := checkGaussian(mean, std); err != nil {
		return nil, err
	}
	if halfWidth < 0 {
		return nil, fmt.Errorf("dist: gaussian half-width %d must be non-negative", halfWidth)
	}
	if 2*halfWidth+1 > maxSupportBins {
		return nil, fmt.Errorf("dist: gaussian half-width %d exceeds %d bins", halfWidth, maxSupportBins)
	}
	center := int(math.Round(mean))
	if std == 0 {
		return NewPoint(center), nil
	}
	lo, hi := center-halfWidth, center+halfWidth
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	return gaussianTable(mean, std, lo, hi)
}

func checkGaussian(mean, std float64) error {
	if math.IsNaN(mean) || math.Abs(mean) > maxSupportHi {
		return fmt.Errorf("dist: gaussian mean %v must be finite and within ±%d", mean, maxSupportHi)
	}
	if std < 0 || math.IsNaN(std) || math.IsInf(std, 0) {
		return fmt.Errorf("dist: gaussian std %v must be non-negative and finite", std)
	}
	return nil
}

// gaussianTable bins N(mean, std²) over the integers of [lo, hi];
// newTable renormalizes the truncated mass. A support so far into the
// tail that every bin underflows to zero is reported as an error
// rather than a distribution.
func gaussianTable(mean, std float64, lo, hi int) (Distribution, error) {
	weights := make([]float64, hi-lo+1)
	var total float64
	for i := range weights {
		n := float64(lo + i)
		weights[i] = normCDF((n+0.5-mean)/std) - normCDF((n-0.5-mean)/std)
		total += weights[i]
	}
	if total == 0 {
		return nil, fmt.Errorf("dist: gaussian(mean %g, std %g) has no probability mass on [%d, %d]",
			mean, std, lo, hi)
	}
	return newTable(lo, weights), nil
}

// NewPoisson returns Poisson(λ) truncated to the smallest prefix
// [0, N] whose probability reaches the given coverage, renormalized.
// It panics unless λ ≥ 0, finite and within the support cap, and
// coverage ∈ (0, 1). λ = 0 is the point mass at zero.
func NewPoisson(lambda, coverage float64) Distribution { return must(newPoisson(lambda, coverage)) }

func newPoisson(lambda, coverage float64) (Distribution, error) {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return nil, fmt.Errorf("dist: poisson lambda %v must be non-negative and finite", lambda)
	}
	if !(coverage > 0 && coverage < 1) {
		return nil, fmt.Errorf("dist: poisson coverage %v must be in (0, 1)", coverage)
	}
	if lambda == 0 {
		return NewPoint(0), nil
	}
	if lambda > maxSupportBins {
		return nil, fmt.Errorf("dist: poisson lambda %g exceeds the %d bin support cap", lambda, maxSupportBins)
	}
	// The PMF recursion runs in log space: for large λ the leading
	// terms underflow to zero in linear space, which would stall the
	// coverage accumulation forever. Underflowed bins contribute
	// (correctly) negligible weight; mass only accumulates near the
	// mode, where exp(logP) is well scaled.
	logLam := math.Log(lambda)
	logP := -lambda // log P[Z = 0]
	var weights []float64
	cum := 0.0
	for n := 0; ; n++ {
		p := math.Exp(logP)
		weights = append(weights, p)
		cum += p
		if cum >= coverage {
			break
		}
		if n+1 > maxSupportBins {
			return nil, fmt.Errorf("dist: poisson(lambda %g) support exceeds %d bins at coverage %v",
				lambda, maxSupportBins, coverage)
		}
		logP += logLam - math.Log(float64(n+1))
	}
	return newTable(0, weights), nil
}

// NewSoliton returns the ideal soliton distribution over {1, …, n}:
// P[Z = 1] = 1/n and P[Z = k] = 1/(k(k−1)) for k ≥ 2. Its ~k⁻² tail
// makes it the heavy-tailed stress model for alert counts — most
// periods are quiet but the support stretches to n with non-negligible
// mass, the regime where a mean/variance drift detector and a
// truncated-Gaussian count model are both at their weakest. It panics
// unless 1 ≤ n ≤ the support cap.
func NewSoliton(n int) Distribution { return must(newSoliton(n)) }

func newSoliton(n int) (Distribution, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: soliton support size %d must be ≥ 1", n)
	}
	if n > maxSupportBins {
		return nil, fmt.Errorf("dist: soliton support size %d exceeds %d bins", n, maxSupportBins)
	}
	weights := make([]float64, n)
	weights[0] = 1 / float64(n)
	for k := 2; k <= n; k++ {
		weights[k-1] = 1 / (float64(k) * float64(k-1))
	}
	return newTable(1, weights), nil
}

// normCDF is the standard normal CDF Φ(x).
func normCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// normQuantile inverts Φ by bisection. Only construction-time code
// calls it, so robustness beats speed; ~70 iterations reach full
// float64 precision on [−40, 40].
func normQuantile(p float64) float64 {
	lo, hi := -40.0, 40.0
	for i := 0; i < 200 && lo < hi; i++ {
		mid := lo + (hi-lo)/2
		if normCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
