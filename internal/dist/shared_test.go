package dist

import (
	"sync"
	"testing"
)

func TestSharedInternsByCanonicalSpec(t *testing.T) {
	g1, err := Shared(Spec{Kind: "gaussian", Mean: 6, Std: 2, Coverage: 0.995})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Shared(Spec{Kind: "gaussian", Mean: 6, Std: 2, Coverage: 0.995})
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("identical specs got distinct tables")
	}
	// HalfWidth overrides Coverage in Build, so differing leftover
	// Coverage values are the same canonical spec.
	h1, err := Shared(Spec{Kind: "gaussian", Mean: 6, Std: 2, HalfWidth: 5, Coverage: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Shared(Spec{Kind: "gaussian", Mean: 6, Std: 2, HalfWidth: 5, Coverage: 0.995})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("half-width specs differing only in unused coverage got distinct tables")
	}
	if g1 == h1 {
		t.Fatal("coverage and half-width parameterizations aliased")
	}
	d1, err := Shared(Spec{Kind: "gaussian", Mean: 7, Std: 2, Coverage: 0.995})
	if err != nil {
		t.Fatal(err)
	}
	if d1 == g1 {
		t.Fatal("distinct specs shared a table")
	}
	p1, err := Shared(Spec{Kind: "point", N: 4})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Shared(Spec{Kind: "point", N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("identical point specs got distinct tables")
	}
}

func TestSharedRejectsBadSpec(t *testing.T) {
	if _, err := Shared(Spec{Kind: "no-such-kind"}); err == nil {
		t.Fatal("Shared accepted an unknown kind")
	}
	if _, err := Shared(Spec{}); err == nil {
		t.Fatal("Shared accepted an empty spec")
	}
}

func TestSharedConcurrent(t *testing.T) {
	spec := Spec{Kind: "poisson", Lambda: 9, Coverage: 0.999}
	const workers = 16
	out := make([]Distribution, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d, err := Shared(spec)
			if err != nil {
				t.Error(err)
				return
			}
			out[w] = d
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if out[w] != out[0] {
			t.Fatal("concurrent Shared callers got distinct tables")
		}
	}
}

// BenchmarkSharedSpec proves table reuse: after the first build, Shared
// on a repeated spec is a lock plus a map probe with zero allocations,
// versus a full table build per call for Spec.Build.
func BenchmarkSharedSpec(b *testing.B) {
	spec := Spec{Kind: "gaussian", Mean: 180, Std: 45, Coverage: 0.995}
	b.Run("shared", func(b *testing.B) {
		if _, err := Shared(spec); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Shared(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := spec.Build(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
