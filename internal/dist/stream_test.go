package dist

import (
	"math"
	"sync"
	"testing"
)

func TestStreamEstimatorStats(t *testing.T) {
	e, err := NewStreamEstimator(8)
	if err != nil {
		t.Fatal(err)
	}
	if mean, std, n := e.Stats(); mean != 0 || std != 0 || n != 0 {
		t.Fatalf("empty Stats() = (%v, %v, %d), want zeros", mean, std, n)
	}
	for _, v := range []int{2, 4, 4, 4, 5, 5, 7, 9} {
		e.Observe(v)
	}
	mean, std, n := e.Stats()
	if n != 8 {
		t.Fatalf("n = %d, want 8", n)
	}
	if mean != 5 {
		t.Fatalf("mean = %v, want 5", mean)
	}
	// Sample variance of the classic 2,4,4,4,5,5,7,9 set is 32/7.
	if want := math.Sqrt(32.0 / 7); math.Abs(std-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", std, want)
	}
	if e.Window() != 8 {
		t.Fatalf("Window() = %d, want 8", e.Window())
	}
}

func TestStreamEstimatorSnapshotSpec(t *testing.T) {
	e, err := NewStreamEstimator(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SnapshotSpec(0.995); err == nil {
		t.Fatal("SnapshotSpec on an empty window should fail")
	}
	for _, v := range []int{5, 7, 6, 6} {
		e.Observe(v)
	}
	if _, err := e.SnapshotSpec(1.5); err == nil {
		t.Fatal("SnapshotSpec should reject coverage outside (0,1)")
	}
	spec, err := e.SnapshotSpec(0.995)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "gaussian" || spec.Mean != 6 || spec.Coverage != 0.995 {
		t.Fatalf("spec = %+v, want gaussian mean 6 coverage 0.995", spec)
	}
	// The spec must rebuild into the same model SnapshotGaussian returns.
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e.SnapshotGaussian(0.995)
	if err != nil {
		t.Fatal(err)
	}
	blo, bhi := built.Support()
	dlo, dhi := direct.Support()
	if blo != dlo || bhi != dhi || built.Mean() != direct.Mean() {
		t.Fatalf("Spec.Build support [%d,%d] mean %v != SnapshotGaussian [%d,%d] mean %v",
			blo, bhi, built.Mean(), dlo, dhi, direct.Mean())
	}

	// A constant window snapshots to a point mass.
	c, err := NewStreamEstimator(3)
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(4)
	c.Observe(4)
	d, err := c.SnapshotGaussian(0.995)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := d.Support(); lo != 4 || hi != 4 {
		t.Fatalf("constant window support [%d,%d], want point mass at 4", lo, hi)
	}
}

// TestStreamEstimatorConcurrent hammers one estimator with concurrent
// observers and snapshotters; run under -race (make race) it proves the
// server ingest path can share an estimator with the refit pipeline.
func TestStreamEstimatorConcurrent(t *testing.T) {
	e, err := NewStreamEstimator(32)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(3) // snapshots never see an empty window
	const (
		writers = 4
		readers = 4
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				e.Observe((w*iters + i) % 17)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				mean, std, n := e.Stats()
				if n < 1 || n > 32 || math.IsNaN(mean) || math.IsNaN(std) {
					t.Errorf("inconsistent Stats() = (%v, %v, %d)", mean, std, n)
					return
				}
				if i%64 == 0 {
					if _, err := e.SnapshotGaussian(0.995); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
