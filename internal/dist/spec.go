package dist

import "fmt"

// Spec is the serializable description of a count distribution, the
// wire form used by the JSON game format ("kind" selects the
// constructor, the remaining fields are that kind's parameters). It
// marshals with encoding/json directly; unused parameter fields are
// omitted, so a Spec → JSON → Spec round trip is lossless.
//
//	{"kind": "gaussian",  "mean": 6, "std": 2, "coverage": 0.995}
//	{"kind": "gaussian",  "mean": 6, "std": 2, "half_width": 5}
//	{"kind": "poisson",   "lambda": 3, "coverage": 0.999}
//	{"kind": "empirical", "counts": [4, 6, 5, 5]}
//	{"kind": "point",     "n": 2}
//	{"kind": "soliton",   "n": 40}
type Spec struct {
	// Kind is one of "gaussian", "poisson", "empirical", "point",
	// "soliton".
	Kind string `json:"kind"`
	// Mean and Std parameterize a gaussian.
	Mean float64 `json:"mean,omitempty"`
	Std  float64 `json:"std,omitempty"`
	// Coverage truncates a gaussian (two-sided) or poisson (upper
	// tail). For a gaussian, HalfWidth > 0 overrides it with a fixed
	// support half-width, the paper's Table II parameterization.
	Coverage  float64 `json:"coverage,omitempty"`
	HalfWidth int     `json:"half_width,omitempty"`
	// Lambda is the poisson rate.
	Lambda float64 `json:"lambda,omitempty"`
	// Counts are the empirical observations.
	Counts []int `json:"counts,omitempty"`
	// N is the point-mass location (kind "point") or the support size
	// (kind "soliton").
	N int `json:"n,omitempty"`
}

// Build validates the spec and constructs the distribution it
// describes.
func (s Spec) Build() (Distribution, error) {
	switch s.Kind {
	case "gaussian":
		if s.HalfWidth != 0 {
			return newGaussianHalfWidth(s.Mean, s.Std, s.HalfWidth)
		}
		return newGaussian(s.Mean, s.Std, s.Coverage)
	case "poisson":
		return newPoisson(s.Lambda, s.Coverage)
	case "empirical":
		return newEmpirical(s.Counts)
	case "point":
		if s.N < 0 {
			return nil, fmt.Errorf("dist: point mass n %d must be ≥ 0", s.N)
		}
		return NewPoint(s.N), nil
	case "soliton":
		return newSoliton(s.N)
	case "":
		return nil, fmt.Errorf("dist: spec is missing a kind")
	default:
		return nil, fmt.Errorf("dist: unknown distribution kind %q", s.Kind)
	}
}
