package dist

import (
	"math/rand"
	"strconv"
	"testing"
)

// BenchmarkPMF shows the table-backed PMF lookup is O(1): ns/op stays
// flat as the support grows three orders of magnitude (D1 in
// DESIGN.md). The exact enumerator calls PMF for every point of every
// type's support per joint realization, so this is the innermost
// operation of exact policy evaluation.
func BenchmarkPMF(b *testing.B) {
	for _, size := range []int{10, 100, 1000, 10000, 100000} {
		counts := make([]int, size)
		for i := range counts {
			counts[i] = i
		}
		d := NewEmpirical(counts)
		lo, hi := d.Support()
		span := hi - lo + 1
		b.Run("support-"+strconv.Itoa(size), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc += d.PMF(lo + i%span)
			}
			sinkF = acc
		})
	}
}

// BenchmarkSample shows inverse-CDF sampling is O(log n) in the support
// size: ns/op grows only logarithmically across the same sweep.
func BenchmarkSample(b *testing.B) {
	for _, size := range []int{10, 1000, 100000} {
		counts := make([]int, size)
		for i := range counts {
			counts[i] = i
		}
		d := NewEmpirical(counts)
		b.Run("support-"+strconv.Itoa(size), func(b *testing.B) {
			r := rand.New(rand.NewSource(1))
			var acc int
			for i := 0; i < b.N; i++ {
				acc += d.Sample(r)
			}
			sinkI = acc
		})
	}
}

var (
	sinkF float64
	sinkI int
)
