package dist

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func testDists() map[string]Distribution {
	return map[string]Distribution{
		"point":             NewPoint(3),
		"empirical":         NewEmpirical([]int{1, 2, 2, 3, 5}),
		"gaussian":          NewGaussian(6, 2, 0.995),
		"gaussianHalfWidth": NewGaussianHalfWidth(6, 2, 5),
		"poisson":           NewPoisson(3, 0.999),
	}
}

func TestPMFSumsToOneOverSupport(t *testing.T) {
	for name, d := range testDists() {
		lo, hi := d.Support()
		if lo < 0 || hi < lo {
			t.Errorf("%s: support [%d, %d] malformed", name, lo, hi)
		}
		var sum float64
		for n := lo; n <= hi; n++ {
			p := d.PMF(n)
			if p < 0 || p > 1 {
				t.Errorf("%s: PMF(%d) = %v outside [0, 1]", name, n, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("%s: PMF sums to %v over support, want 1", name, sum)
		}
		if d.PMF(lo-1) != 0 || d.PMF(hi+1) != 0 {
			t.Errorf("%s: PMF nonzero outside support", name)
		}
		// Support is tight: both ends carry mass.
		if d.PMF(lo) == 0 || d.PMF(hi) == 0 {
			t.Errorf("%s: support [%d, %d] not tight", name, lo, hi)
		}
	}
}

func TestMeanMatchesPMF(t *testing.T) {
	for name, d := range testDists() {
		lo, hi := d.Support()
		var want float64
		for n := lo; n <= hi; n++ {
			want += float64(n) * d.PMF(n)
		}
		if math.Abs(d.Mean()-want) > 1e-9 {
			t.Errorf("%s: Mean() = %v, PMF says %v", name, d.Mean(), want)
		}
	}
}

func TestPointAndEmpiricalExact(t *testing.T) {
	p := NewPoint(4)
	if lo, hi := p.Support(); lo != 4 || hi != 4 {
		t.Fatalf("point support [%d, %d]", lo, hi)
	}
	if p.PMF(4) != 1 || p.Mean() != 4 {
		t.Fatalf("point PMF(4) = %v, mean = %v", p.PMF(4), p.Mean())
	}
	if NewPoint(-2).Mean() != 0 {
		t.Fatal("negative point mass should clip to 0")
	}

	e := NewEmpirical([]int{2, 0, 1, 1})
	if e.Mean() != 1 {
		t.Fatalf("empirical mean = %v, want exactly 1", e.Mean())
	}
	if e.PMF(1) != 0.5 || e.PMF(0) != 0.25 || e.PMF(2) != 0.25 {
		t.Fatalf("empirical PMF = %v/%v/%v", e.PMF(0), e.PMF(1), e.PMF(2))
	}
}

func TestGaussianTruncation(t *testing.T) {
	// The fixed-half-width form pins the support of the paper's Syn A
	// types: mean 6, half-width 5 → [1, 11].
	d := NewGaussianHalfWidth(6, 2, 5)
	if lo, hi := d.Support(); lo != 1 || hi != 11 {
		t.Fatalf("half-width support [%d, %d], want [1, 11]", lo, hi)
	}
	// Symmetric support around the mean keeps the discretized mean there.
	if math.Abs(d.Mean()-6) > 1e-9 {
		t.Fatalf("half-width mean = %v, want 6", d.Mean())
	}
	// A low mean clips at zero rather than going negative.
	lo, _ := NewGaussian(1, 3, 0.995).Support()
	if lo != 0 {
		t.Fatalf("clipped gaussian lo = %d, want 0", lo)
	}
	// Zero std degenerates to the point mass.
	if d := NewGaussian(5.4, 0, 0.995); d.PMF(5) != 1 {
		t.Fatal("zero-std gaussian should be a point mass at round(mean)")
	}
	// Higher coverage keeps a superset of the support.
	lo99, hi99 := NewGaussian(20, 3, 0.99).Support()
	lo999, hi999 := NewGaussian(20, 3, 0.9999).Support()
	if lo999 > lo99 || hi999 < hi99 {
		t.Fatalf("coverage 0.9999 support [%d, %d] not ⊇ 0.99 support [%d, %d]",
			lo999, hi999, lo99, hi99)
	}
}

func TestPoissonCoverage(t *testing.T) {
	const lambda, coverage = 3.0, 0.999
	d := NewPoisson(lambda, coverage)
	lo, hi := d.Support()
	if lo != 0 {
		t.Fatalf("poisson lo = %d, want 0", lo)
	}
	// The untruncated mass of the kept prefix reaches the coverage, and
	// the prefix is minimal (dropping the top bin falls below it).
	mass := func(upto int) float64 {
		p, cum := math.Exp(-lambda), 0.0
		for n := 0; n <= upto; n++ {
			cum += p
			p *= lambda / float64(n+1)
		}
		return cum
	}
	if mass(hi) < coverage {
		t.Fatalf("kept mass %v below coverage %v", mass(hi), coverage)
	}
	if mass(hi-1) >= coverage {
		t.Fatalf("support [0, %d] not minimal for coverage %v", hi, coverage)
	}
	if math.Abs(d.Mean()-lambda) > 0.05 {
		t.Fatalf("truncated poisson mean = %v, want ≈ %v", d.Mean(), lambda)
	}
}

func TestSampleDeterministicUnderSeed(t *testing.T) {
	for name, build := range map[string]func() Distribution{
		"empirical": func() Distribution { return NewEmpirical([]int{1, 2, 2, 3, 5}) },
		"gaussian":  func() Distribution { return NewGaussian(6, 2, 0.995) },
		"poisson":   func() Distribution { return NewPoisson(3, 0.999) },
	} {
		draw := func() []int {
			r := rand.New(rand.NewSource(42))
			d := build()
			out := make([]int, 64)
			for i := range out {
				out[i] = d.Sample(r)
			}
			return out
		}
		if a, b := draw(), draw(); !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different sequences\n%v\n%v", name, a, b)
		}
	}
}

func TestSampleFrequenciesMatchPMF(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for name, d := range testDists() {
		lo, hi := d.Support()
		const draws = 200_000
		freq := make([]int, hi-lo+1)
		for i := 0; i < draws; i++ {
			n := d.Sample(r)
			if n < lo || n > hi {
				t.Fatalf("%s: sampled %d outside support [%d, %d]", name, n, lo, hi)
			}
			freq[n-lo]++
		}
		for n := lo; n <= hi; n++ {
			got := float64(freq[n-lo]) / draws
			if math.Abs(got-d.PMF(n)) > 0.01 {
				t.Errorf("%s: freq(%d) = %v, PMF = %v", name, n, got, d.PMF(n))
			}
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		{Kind: "gaussian", Mean: 6, Std: 2, Coverage: 0.995},
		{Kind: "gaussian", Mean: 6, Std: 2, HalfWidth: 5},
		{Kind: "poisson", Lambda: 3, Coverage: 0.999},
		{Kind: "empirical", Counts: []int{4, 6, 5, 5}},
		{Kind: "point", N: 2},
		{Kind: "soliton", N: 40},
	}
	for _, s := range specs {
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%s: marshal: %v", s.Kind, err)
		}
		var back Spec
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: unmarshal %s: %v", s.Kind, raw, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("%s: round trip %s changed spec: %+v → %+v", s.Kind, raw, s, back)
		}
		want, err := s.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", s.Kind, err)
		}
		got, err := back.Build()
		if err != nil {
			t.Fatalf("%s: rebuilt spec failed: %v", s.Kind, err)
		}
		wlo, whi := want.Support()
		glo, ghi := got.Support()
		if wlo != glo || whi != ghi {
			t.Fatalf("%s: support changed across round trip", s.Kind)
		}
		for n := wlo; n <= whi; n++ {
			if want.PMF(n) != got.PMF(n) {
				t.Fatalf("%s: PMF(%d) changed across round trip", s.Kind, n)
			}
		}
	}
}

func TestSoliton(t *testing.T) {
	// The ideal soliton over {1..n}: P[1] = 1/n, P[k] = 1/(k(k−1)).
	// These weights already sum to 1 (telescoping), so the table's
	// normalization must be the identity and the PMF exact.
	const n = 50
	d := NewSoliton(n)
	if lo, hi := d.Support(); lo != 1 || hi != n {
		t.Fatalf("soliton(%d) support [%d, %d], want [1, %d]", n, lo, hi, n)
	}
	if got := d.PMF(1); math.Abs(got-1.0/n) > 1e-12 {
		t.Fatalf("PMF(1) = %v, want 1/%d", got, n)
	}
	for _, k := range []int{2, 3, 10, n} {
		want := 1 / (float64(k) * float64(k-1))
		if got := d.PMF(k); math.Abs(got-want) > 1e-12 {
			t.Fatalf("PMF(%d) = %v, want %v", k, got, want)
		}
	}
	// Heavy tail: the upper half of the support still holds ~1/n-scale
	// mass (Σ_{k>n/2} 1/(k(k−1)) ≈ 2/n), unlike any truncated gaussian
	// at matching mean.
	var tail float64
	for k := n/2 + 1; k <= n; k++ {
		tail += d.PMF(k)
	}
	if tail < 1.0/n {
		t.Fatalf("upper-half tail mass %v, want ≥ %v", tail, 1.0/n)
	}
	// Mean of the ideal soliton is H_n (the harmonic number): 1/n·1 +
	// Σ_{k=2..n} k/(k(k−1)) = 1/n + Σ 1/(k−1).
	want := 1.0 / n
	for k := 2; k <= n; k++ {
		want += 1 / float64(k-1)
	}
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Fatalf("soliton(%d) mean = %v, want H-based %v", n, d.Mean(), want)
	}
	if p := NewSoliton(1); p.Mean() != 1 || p.PMF(1) != 1 {
		t.Fatalf("soliton(1) is not the point mass at 1")
	}
}

func TestPoissonLargeLambdaTerminates(t *testing.T) {
	// exp(-λ) underflows to 0 for λ ≳ 746; the log-space recursion must
	// still accumulate coverage and terminate with a sane support.
	d := NewPoisson(800, 0.999)
	lo, hi := d.Support()
	if lo < 500 || lo > 800 || hi < 800 || hi > 900 {
		t.Fatalf("poisson(800) support [%d, %d], want ≈ 800 ± a few σ", lo, hi)
	}
	var sum float64
	for n := lo; n <= hi; n++ {
		sum += d.PMF(n)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("poisson(800) PMF sums to %v", sum)
	}
	if math.Abs(d.Mean()-800) > 2 {
		t.Fatalf("poisson(800) mean = %v", d.Mean())
	}
}

func TestSpecBuildRejectsUnrepresentable(t *testing.T) {
	// Config mistakes must come back as errors from Build, never as
	// panics or unbounded allocations (DecodeJSON relies on this).
	bad := []Spec{
		{Kind: "gaussian", Mean: -60, Std: 1, Coverage: 0.995},  // clipped support has no mass
		{Kind: "gaussian", Mean: 0, Std: 1e17, Coverage: 0.995}, // support beyond the bin cap
		{Kind: "gaussian", Mean: 1e18, Std: 1, Coverage: 0.995}, // mean beyond the count cap
		{Kind: "gaussian", Mean: 6, Std: 2, HalfWidth: 1 << 30}, // half-width beyond the bin cap
		{Kind: "poisson", Lambda: 1e9, Coverage: 0.999},         // lambda beyond the bin cap
		{Kind: "empirical", Counts: []int{0, 2_000_000_000}},    // count range beyond the bin cap
	}
	for _, s := range bad {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Build panicked on %+v: %v", s, r)
				}
			}()
			if _, err := s.Build(); err == nil {
				t.Errorf("Build accepted unrepresentable spec %+v", s)
			}
		}()
	}
}

func TestSpecBuildErrors(t *testing.T) {
	bad := []Spec{
		{},
		{Kind: "weird"},
		{Kind: "gaussian", Mean: 6, Std: -1, Coverage: 0.9},
		{Kind: "gaussian", Mean: 6, Std: 2}, // no coverage or half-width
		{Kind: "gaussian", Mean: 6, Std: 2, Coverage: 1},
		{Kind: "gaussian", Mean: 6, Std: 2, HalfWidth: -1},
		{Kind: "poisson", Lambda: -1, Coverage: 0.9},
		{Kind: "poisson", Lambda: 3},
		{Kind: "empirical"},
		{Kind: "empirical", Counts: []int{1, -2}},
		{Kind: "point", N: -1},
		{Kind: "soliton"},
		{Kind: "soliton", N: -3},
		{Kind: "soliton", N: maxSupportBins + 1},
	}
	for _, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Errorf("Build accepted invalid spec %+v", s)
		}
	}
}

func TestStreamEstimatorWindowEviction(t *testing.T) {
	if _, err := NewStreamEstimator(0); err == nil {
		t.Fatal("window 0 accepted")
	}
	e, err := NewStreamEstimator(3)
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 0 || e.Mean() != 0 {
		t.Fatal("fresh estimator not empty")
	}
	if _, err := e.SnapshotGaussian(0.995); err == nil {
		t.Fatal("snapshot of empty window accepted")
	}

	e.Observe(1)
	e.Observe(2)
	e.Observe(3)
	if e.Len() != 3 || e.Mean() != 2 {
		t.Fatalf("full window: len %d mean %v, want 3 and 2", e.Len(), e.Mean())
	}
	// The fourth observation evicts the oldest: window is {2, 3, 10}.
	e.Observe(10)
	if e.Len() != 3 || e.Mean() != 5 {
		t.Fatalf("after eviction: len %d mean %v, want 3 and 5", e.Len(), e.Mean())
	}
	// Fill entirely with one value: snapshot degenerates to that point.
	for i := 0; i < 3; i++ {
		e.Observe(7)
	}
	d, err := e.SnapshotGaussian(0.995)
	if err != nil {
		t.Fatal(err)
	}
	if d.PMF(7) != 1 {
		t.Fatalf("constant window snapshot PMF(7) = %v, want 1", d.PMF(7))
	}
	if _, err := e.SnapshotGaussian(1.5); err == nil {
		t.Fatal("invalid coverage accepted")
	}
}

func TestStreamEstimatorSnapshotTracksWindow(t *testing.T) {
	e, err := NewStreamEstimator(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{5, 7, 6, 6} {
		e.Observe(n)
	}
	d, err := e.SnapshotGaussian(0.995)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-6) > 0.2 {
		t.Fatalf("snapshot mean = %v, want ≈ 6", d.Mean())
	}
}
