package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestVectorDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorAddScaled(t *testing.T) {
	v := Vector{1, 2, 3}
	v.AddScaled(2, Vector{10, 20, 30})
	want := Vector{21, 42, 63}
	if !v.Equal(want, 0) {
		t.Fatalf("AddScaled = %v, want %v", v, want)
	}
}

func TestVectorScale(t *testing.T) {
	v := Vector{1, -2, 0.5}
	v.Scale(-2)
	if !v.Equal(Vector{-2, 4, -1}, 0) {
		t.Fatalf("Scale = %v", v)
	}
}

func TestVectorMaxMin(t *testing.T) {
	v := Vector{3, -1, 7, 7, 2}
	if m, i := v.Max(); m != 7 || i != 2 {
		t.Fatalf("Max = (%v,%d), want (7,2)", m, i)
	}
	if m, i := v.Min(); m != -1 || i != 1 {
		t.Fatalf("Min = (%v,%d), want (-1,1)", m, i)
	}
}

func TestVectorMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Vector{}.Max()
}

func TestVectorSumNorms(t *testing.T) {
	v := Vector{3, -4}
	if s := v.Sum(); s != -1 {
		t.Fatalf("Sum = %v", s)
	}
	if n := v.Norm2(); math.Abs(n-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", n)
	}
	if n := v.NormInf(); n != 4 {
		t.Fatalf("NormInf = %v, want 4", n)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2}
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestMatrixAtSetRowCol(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("At/Set roundtrip failed")
	}
	m.Row(0)[1] = 7
	if m.At(0, 1) != 7 {
		t.Fatal("Row is not a mutable view")
	}
	col := m.Col(1)
	if !col.Equal(Vector{7, 0}, 0) {
		t.Fatalf("Col = %v", col)
	}
}

func TestMatrixFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows produced %v", m)
	}
	if e := FromRows(nil); e.Rows != 0 || e.Cols != 0 {
		t.Fatal("FromRows(nil) not empty")
	}
}

func TestMatrixFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMatrixMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.MulVec(Vector{1, -1})
	if !got.Equal(Vector{-1, -1, -1}, 1e-15) {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMatrixMulVecT(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.MulVecT(Vector{1, 0, -1})
	if !got.Equal(Vector{-4, -4}, 1e-15) {
		t.Fatalf("MulVecT = %v", got)
	}
}

func TestMatrixSwapRowsClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	n := m.Clone()
	n.SwapRows(0, 1)
	if n.At(0, 0) != 3 || n.At(1, 0) != 1 {
		t.Fatalf("SwapRows = %v", n)
	}
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
	n.SwapRows(1, 1) // no-op must not corrupt
	if n.At(1, 0) != 1 {
		t.Fatal("self-swap corrupted matrix")
	}
}

func TestMatrixString(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	if s := m.String(); s == "" {
		t.Fatal("String is empty")
	}
}

// Property: (Mᵀ)·x computed by MulVecT agrees with explicit transpose
// multiplication for random matrices.
func TestMulVecTMatchesTransposeProperty(t *testing.T) {
	f := func(seedRows [3][4]int8, xRaw [3]int8) bool {
		m := New(3, 4)
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				m.Set(i, j, float64(seedRows[i][j]))
			}
		}
		x := Vector{float64(xRaw[0]), float64(xRaw[1]), float64(xRaw[2])}
		got := m.MulVecT(x)
		want := NewVector(4)
		for j := 0; j < 4; j++ {
			for i := 0; i < 3; i++ {
				want[j] += m.At(i, j) * x[i]
			}
		}
		return got.Equal(want, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: dot product is symmetric and linear in its first argument.
func TestDotBilinearProperty(t *testing.T) {
	f := func(a, b, c [5]int8, kRaw int8) bool {
		k := float64(kRaw)
		va, vb, vc := NewVector(5), NewVector(5), NewVector(5)
		for i := 0; i < 5; i++ {
			va[i], vb[i], vc[i] = float64(a[i]), float64(b[i]), float64(c[i])
		}
		if va.Dot(vb) != vb.Dot(va) {
			return false
		}
		lhs := NewVector(5)
		for i := range lhs {
			lhs[i] = k*va[i] + vc[i]
		}
		return math.Abs(lhs.Dot(vb)-(k*va.Dot(vb)+vc.Dot(vb))) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
