// Package matrix provides small dense vector and matrix primitives used by
// the linear-programming solver and the game-model code. It is deliberately
// minimal: row-major dense storage, no views, explicit dimensions, and
// panics on shape mismatches (shape errors are programming errors, not
// runtime conditions).
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("matrix: Dot dimension mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// AddScaled sets v = v + alpha*w in place.
func (v Vector) AddScaled(alpha float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("matrix: AddScaled dimension mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale multiplies every element of v by alpha in place.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Max returns the maximum element and its index. It panics on an empty
// vector.
func (v Vector) Max() (float64, int) {
	if len(v) == 0 {
		panic("matrix: Max of empty vector")
	}
	best, at := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, at = x, i+1
		}
	}
	return best, at
}

// Min returns the minimum element and its index. It panics on an empty
// vector.
func (v Vector) Min() (float64, int) {
	if len(v) == 0 {
		panic("matrix: Min of empty vector")
	}
	best, at := v[0], 0
	for i, x := range v[1:] {
		if x < best {
			best, at = x, i+1
		}
	}
	return best, at
}

// Sum returns the sum of all elements.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Norm2 returns the Euclidean norm.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute element, or 0 for an empty vector.
func (v Vector) NormInf() float64 {
	var s float64
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// Equal reports whether v and w have the same length and elements within
// tol of each other.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// New returns a zero matrix with r rows and c columns.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Row(i), row)
	}
	return m
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	n := New(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	v := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		v[i] = m.At(i, j)
	}
	return v
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("matrix: MulVec dimension mismatch %d cols vs len %d", m.Cols, len(x)))
	}
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Row(i).Dot(x)
	}
	return out
}

// MulVecT returns mᵀ·x (i.e. x as a row vector times m).
func (m *Matrix) MulVecT(x Vector) Vector {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("matrix: MulVecT dimension mismatch %d rows vs len %d", m.Rows, len(x)))
	}
	out := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, a := range row {
			out[j] += xi * a
		}
	}
	return out
}

// SwapRows exchanges rows i and k in place.
func (m *Matrix) SwapRows(i, k int) {
	if i == k {
		return
	}
	ri, rk := m.Row(i), m.Row(k)
	for j := range ri {
		ri[j], rk[j] = rk[j], ri[j]
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
