package auditgame

import "auditgame/internal/solver"

// Failure taxonomy: every solver failure carries a classification the
// serving layer can surface on job DTOs and GET /v1/drift, so an operator
// can tell a recovered panic from a deadline from a transient fault
// without reading logs.

// FailureKind classifies how a solve or refit failed.
type FailureKind = solver.FailureKind

const (
	// FailPanic is a recovered panic (a programming error or injected
	// chaos) converted to a typed error by a solver containment guard.
	FailPanic = solver.FailPanic
	// FailTimeout is a context deadline expiry.
	FailTimeout = solver.FailTimeout
	// FailCancelled is an explicit context cancellation.
	FailCancelled = solver.FailCancelled
	// FailTransient is a recoverable fault that retry machinery may
	// absorb (errors reporting Transient() == true).
	FailTransient = solver.FailTransient
	// FailInternal is everything else: numerical failures, malformed
	// inputs, logic errors.
	FailInternal = solver.FailInternal
)

// SolveError is the typed failure of a solver entry point: the operation
// that failed, its FailureKind, the underlying cause, and — for recovered
// panics — the goroutine stack captured at recovery.
type SolveError = solver.SolveError

// ClassifyFailure maps any error from the solve/refit path onto the
// failure taxonomy. A nil error classifies as "".
func ClassifyFailure(err error) FailureKind { return solver.Classify(err) }
