package auditgame_test

import (
	"fmt"
	"math/rand"

	"auditgame"
)

// ExampleSolveISHM solves the paper's controlled dataset and prints the
// policy's headline numbers.
func ExampleSolveISHM() {
	g := auditgame.SynA()
	in, err := auditgame.NewInstance(g, 6, auditgame.SourceOptions{})
	if err != nil {
		panic(err)
	}
	res, err := auditgame.SolveISHM(in, auditgame.ISHMConfig{Epsilon: 0.1, ExactInner: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("thresholds: %v\n", res.Policy.Thresholds)
	fmt.Printf("has orderings: %v\n", len(res.Policy.Q) > 0)
	// Output:
	// thresholds: [2,2,2,2]
	// has orderings: true
}

// ExampleSolveExact computes the optimal ordering mixture for fixed
// thresholds.
func ExampleSolveExact() {
	in, err := auditgame.NewInstance(auditgame.SynA(), 4, auditgame.SourceOptions{})
	if err != nil {
		panic(err)
	}
	pol, err := auditgame.SolveExact(in, auditgame.Thresholds{2, 1, 1, 2})
	if err != nil {
		panic(err)
	}
	var sum float64
	for _, p := range pol.Po {
		sum += p
	}
	fmt.Printf("probabilities sum to %.0f\n", sum)
	// Output:
	// probabilities sum to 1
}

// ExamplePolicyFrom shows the path from a solved game to the per-day
// recourse selection an auditor executes.
func ExamplePolicyFrom() {
	g := auditgame.SynA()
	in, err := auditgame.NewInstance(g, 10, auditgame.SourceOptions{})
	if err != nil {
		panic(err)
	}
	mixed, err := auditgame.SolveExact(in, auditgame.Thresholds{3, 3, 3, 3})
	if err != nil {
		panic(err)
	}
	pol := auditgame.PolicyFrom(g, 10, mixed)

	// Today's realized alert bins: 5 of type 1, 4 of type 2, …
	sel, err := pol.Select([]int{5, 4, 6, 3}, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	fmt.Printf("audited %d alerts within budget %.0f\n", sel.Audited(), pol.Budget)
	fmt.Printf("overspent: %v\n", sel.Spent > pol.Budget)
	// Output:
	// audited 10 alerts within budget 10
	// overspent: false
}

// ExampleNewRuleEngine builds a tiny TDMT pipeline: rules classify raw
// access events into typed alert bins.
func ExampleNewRuleEngine() {
	engine, err := auditgame.NewRuleEngine([]auditgame.Rule{
		{Name: "self-access", Match: func(ev auditgame.AccessEvent) bool {
			return ev.Actor == ev.Target
		}},
		{Name: "vip-record", Match: func(ev auditgame.AccessEvent) bool {
			return ev.Attr("target.vip") == "yes"
		}},
	})
	if err != nil {
		panic(err)
	}
	events := []auditgame.AccessEvent{
		{Day: 0, Actor: "nurse7", Target: "nurse7"},
		{Day: 0, Actor: "nurse7", Target: "patient9"},
		{Day: 0, Actor: "dr3", Target: "mayor",
			Attrs: map[string]string{"target.vip": "yes"}},
	}
	log, benign, err := auditgame.ProcessEvents(engine, events, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("alerts: %d, benign: %d\n", log.Len(), benign)
	counts, _ := auditgame.CountsForDay(log, 0)
	fmt.Printf("bins: %v\n", counts)
	// Output:
	// alerts: 2, benign: 1
	// bins: [1 1]
}
